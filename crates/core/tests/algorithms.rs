//! End-to-end correctness tests for the four fixed-precision
//! algorithms, mirroring the claims of the paper: indicators agree with
//! exact errors, the tolerance contract holds, ILUT_CRTP's threshold
//! control works, and results are deterministic across worker counts.

use lra_core::{
    ilut_crtp, lu_crtp, rand_qb_ei, rand_ubv, DropStrategy, IlutOpts, LFormation, LuCrtpOpts,
    OrderingMode, Parallelism, QbError, QbOpts, UbvOpts,
};
use lra_dense::matmul_tn;
use lra_sparse::CscMatrix;

fn small_fem() -> CscMatrix {
    lra_matgen::with_decay(&lra_matgen::fem2d(12, 11, 3), 1e-7, 5)
}

fn small_circuit() -> CscMatrix {
    lra_matgen::with_decay(&lra_matgen::circuit(150, 4, 3, 7), 1e-7, 9)
}

fn fill_heavy() -> CscMatrix {
    lra_matgen::with_decay(&lra_matgen::fluid_block(12, 10, 11), 1e-7, 13)
}

// ---------- RandQB_EI ----------

#[test]
fn qb_meets_tolerance_and_indicator_agrees() {
    let a = small_fem();
    for tau in [1e-1, 1e-3, 1e-5] {
        let r = rand_qb_ei(&a, &QbOpts::new(8, tau)).unwrap();
        assert!(r.converged, "tau={tau}");
        let exact = r.exact_error(&a, Parallelism::SEQ);
        assert!(
            exact < tau * r.a_norm_f,
            "tau={tau}: exact error {exact} vs bound {}",
            tau * r.a_norm_f
        );
        // Indicator within a small factor of the exact error.
        assert!(
            (r.indicator - exact).abs() <= 0.05 * exact + 1e-12 * r.a_norm_f,
            "tau={tau}: indicator {} vs exact {exact}",
            r.indicator
        );
    }
}

#[test]
fn qb_rejects_tau_below_floor() {
    let a = small_fem();
    let err = rand_qb_ei(&a, &QbOpts::new(8, 1e-9)).unwrap_err();
    assert!(matches!(err, QbError::TauBelowIndicatorFloor { .. }));
    let msg = err.to_string();
    assert!(msg.contains("2.1e-7") || msg.contains("2.1e-7") || msg.contains("floor"));
}

#[test]
fn qb_orthogonality_stays_tight() {
    let a = small_circuit();
    let r = rand_qb_ei(&a, &QbOpts::new(8, 1e-4)).unwrap();
    // The paper reports 1e-15..1e-13 after one iteration, growing about
    // one order of magnitude by convergence.
    assert!(
        r.orthogonality_error() < 1e-11,
        "loss of orthogonality: {}",
        r.orthogonality_error()
    );
}

#[test]
fn qb_power_scheme_reduces_iterations() {
    let a = fill_heavy();
    let r0 = rand_qb_ei(&a, &QbOpts::new(6, 1e-3).with_power(0)).unwrap();
    let r2 = rand_qb_ei(&a, &QbOpts::new(6, 1e-3).with_power(2)).unwrap();
    assert!(r0.converged && r2.converged);
    assert!(
        r2.iterations <= r0.iterations,
        "p=2 took {} its, p=0 took {}",
        r2.iterations,
        r0.iterations
    );
}

#[test]
fn qb_deterministic_across_np_and_seeded() {
    let a = small_circuit();
    let r1 = rand_qb_ei(&a, &QbOpts::new(8, 1e-3).with_seed(7)).unwrap();
    let r2 = rand_qb_ei(
        &a,
        &QbOpts::new(8, 1e-3).with_seed(7).with_par(Parallelism::new(4)),
    )
    .unwrap();
    assert_eq!(r1.rank, r2.rank);
    assert_eq!(r1.iterations, r2.iterations);
    assert!(r1.q.max_abs_diff(&r2.q) < 1e-12);
    // Different seed gives a different (but still valid) basis.
    let r3 = rand_qb_ei(&a, &QbOpts::new(8, 1e-3).with_seed(8)).unwrap();
    assert!(r3.converged);
}

#[test]
fn qb_max_rank_cap() {
    let a = small_fem();
    let r = rand_qb_ei(&a, &QbOpts::new(8, 1e-12_f64.max(3e-7)).with_max_rank(16)).unwrap();
    assert!(r.rank <= 16);
    if !r.converged {
        assert_eq!(r.rank, 16);
    }
}

#[test]
fn qb_frobenius_identity_holds() {
    // ||A - QB||_F^2 == ||A||_F^2 - ||B||_F^2 for orthonormal Q.
    let a = small_circuit();
    let r = rand_qb_ei(&a, &QbOpts::new(10, 1e-2)).unwrap();
    let exact = r.exact_error(&a, Parallelism::SEQ);
    let identity = (a.fro_norm_sq() - r.b.fro_norm_sq()).max(0.0).sqrt();
    assert!((exact - identity).abs() < 1e-8 * r.a_norm_f);
}

// ---------- LU_CRTP ----------

#[test]
fn lucrtp_meets_tolerance_and_indicator_is_exact() {
    let a = small_fem();
    for tau in [1e-1, 1e-3, 1e-6] {
        let r = lu_crtp(&a, &LuCrtpOpts::new(8, tau));
        assert!(r.converged, "tau={tau}: {:?}", r.breakdown);
        let exact = r.exact_error(&a, Parallelism::SEQ);
        assert!(exact < tau * r.a_norm_f, "tau={tau}: {exact}");
        // For LU_CRTP the indicator IS the exact error (eq. 9).
        assert!(
            (r.indicator - exact).abs() < 1e-9 * r.a_norm_f,
            "tau={tau}: indicator {} vs exact {exact}",
            r.indicator
        );
    }
}

#[test]
fn lucrtp_runs_below_qb_indicator_floor() {
    // Eq. 9 keeps working for tau < 2.1e-7 (Section II-B2).
    let a = small_fem();
    let tau = 1e-8;
    let r = lu_crtp(&a, &LuCrtpOpts::new(8, tau));
    assert!(r.converged, "{:?}", r.breakdown);
    let exact = r.exact_error(&a, Parallelism::SEQ);
    assert!(exact < tau * r.a_norm_f);
}

#[test]
fn lucrtp_pivots_are_valid_permutation_prefixes() {
    let a = small_circuit();
    let r = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-3));
    let mut rows = r.pivot_rows.clone();
    rows.sort_unstable();
    rows.dedup();
    assert_eq!(rows.len(), r.rank, "duplicate pivot rows");
    let mut cols = r.pivot_cols.clone();
    cols.sort_unstable();
    cols.dedup();
    assert_eq!(cols.len(), r.rank, "duplicate pivot columns");
    assert_eq!(r.l.cols(), r.rank);
    assert_eq!(r.u.rows(), r.rank);
    // Unit entries of L at the pivot rows.
    for (j, &pr) in r.pivot_rows.iter().enumerate() {
        assert!((r.l.get(pr, j) - 1.0).abs() < 1e-14, "L[{pr},{j}] != 1");
    }
    // U is *block* upper in pivot coordinates: rows of a later block
    // are zero at pivot columns of earlier blocks (those columns were
    // eliminated from the active set). Within a block, Ā11 is full.
    let k = 8;
    for t in 0..r.rank {
        for s in 0..(t / k) * k {
            assert_eq!(
                r.u.get(t, r.pivot_cols[s]),
                0.0,
                "U({t},{s}) not eliminated"
            );
        }
    }
}

#[test]
fn lucrtp_exact_low_rank_detected() {
    // Spectrum generator with rank 6 and tiny tail: LU_CRTP should stop
    // at K close to 6.
    let sigmas = [8.0, 4.0, 2.0, 1.0, 0.5, 0.25];
    let a = lra_matgen::spectrum(120, 100, &sigmas, 10, 21);
    let r = lu_crtp(&a, &LuCrtpOpts::new(2, 1e-10));
    assert!(r.converged, "{:?}", r.breakdown);
    assert!(r.rank <= 10, "rank {} too large for a rank-6 matrix", r.rank);
}

#[test]
fn lucrtp_ordering_modes_all_converge() {
    let a = fill_heavy();
    for ordering in [
        OrderingMode::Natural,
        OrderingMode::FirstIteration,
        OrderingMode::EveryIteration,
    ] {
        let r = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-2).with_ordering(ordering));
        assert!(r.converged, "{ordering:?}: {:?}", r.breakdown);
        let exact = r.exact_error(&a, Parallelism::SEQ);
        assert!(exact < 1e-2 * r.a_norm_f, "{ordering:?}");
    }
}

#[test]
fn lucrtp_qbased_l_formation_works_and_is_denser() {
    let a = fill_heavy();
    let direct = lu_crtp(&a, &{
        let mut o = LuCrtpOpts::new(8, 1e-2);
        o.l_formation = LFormation::Direct;
        o
    });
    let qbased = lu_crtp(&a, &{
        let mut o = LuCrtpOpts::new(8, 1e-2);
        o.l_formation = LFormation::QBased;
        o
    });
    assert!(direct.converged && qbased.converged);
    let e_q = qbased.exact_error(&a, Parallelism::SEQ);
    assert!(e_q < 1e-2 * qbased.a_norm_f);
    // The Q-based L introduces additional (small) nonzeros (§II-B3).
    assert!(
        qbased.l.nnz() >= direct.l.nnz(),
        "qbased {} vs direct {}",
        qbased.l.nnz(),
        direct.l.nnz()
    );
}

#[test]
fn lucrtp_parallel_matches_sequential() {
    let a = small_circuit();
    let rs = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-3));
    let rp = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-3).with_par(Parallelism::new(4)));
    assert_eq!(rs.rank, rp.rank);
    assert_eq!(rs.pivot_cols, rp.pivot_cols);
    assert_eq!(rs.pivot_rows, rp.pivot_rows);
    assert!((rs.indicator - rp.indicator).abs() < 1e-9 * rs.a_norm_f);
}

#[test]
fn lucrtp_trace_records_fill() {
    let a = fill_heavy();
    let r = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-3));
    assert_eq!(r.trace.len(), r.iterations);
    for (i, t) in r.trace.iter().enumerate() {
        assert_eq!(t.iteration, i + 1);
        assert!(t.schur_density <= 1.0);
        assert!(t.indicator.is_finite());
    }
    // Indicators decrease overall (monotone in exact arithmetic).
    let first = r.trace.first().unwrap().indicator;
    let last = r.trace.last().unwrap().indicator;
    assert!(last <= first);
}

#[test]
fn lucrtp_zero_matrix_converges_immediately() {
    let a = CscMatrix::zeros(30, 25);
    let r = lu_crtp(&a, &LuCrtpOpts::new(4, 1e-3));
    // ||A||_F = 0 so the stopping bound is 0; the tournament finds no
    // independent columns and the method must halt without panicking.
    assert_eq!(r.rank, 0);
    assert!(!r.converged || r.indicator == 0.0);
}

#[test]
fn lucrtp_k_larger_than_dims() {
    let a = lra_matgen::banded(10, 2, 5);
    let r = lu_crtp(&a, &LuCrtpOpts::new(64, 1e-10));
    assert!(r.rank <= 10);
    assert!(r.converged, "{:?}", r.breakdown);
}

// ---------- ILUT_CRTP ----------

#[test]
fn ilut_meets_tolerance_with_less_fill() {
    let a = fill_heavy();
    let tau = 1e-3;
    let lu_res = lu_crtp(&a, &LuCrtpOpts::new(8, tau));
    assert!(lu_res.converged);
    let ilut_res = ilut_crtp(&a, &IlutOpts::new(8, tau, lu_res.iterations));
    assert!(ilut_res.converged, "{:?}", ilut_res.breakdown);
    let exact = ilut_res.exact_error(&a, Parallelism::SEQ);
    // The paper observed the true error below tau*||A||_F in all suite
    // cases; the theory only guarantees ~tau + threshold mass.
    let report = ilut_res.threshold.as_ref().unwrap();
    let bound = tau * ilut_res.a_norm_f + report.dropped_mass_sq.sqrt();
    assert!(exact <= bound * 1.000001, "exact {exact} vs bound {bound}");
    // Estimator (26) is within the dropped mass of the true error.
    assert!(
        (ilut_res.indicator - exact).abs() <= report.dropped_mass_sq.sqrt() + 1e-9,
        "estimator {} vs exact {exact}",
        ilut_res.indicator
    );
    // nnz reduced (or at worst equal) on this fill-in heavy problem.
    assert!(
        ilut_res.factor_nnz() <= lu_res.factor_nnz(),
        "ilut {} vs lu {}",
        ilut_res.factor_nnz(),
        lu_res.factor_nnz()
    );
}

#[test]
fn ilut_records_mu_from_equation_24() {
    let a = small_fem();
    let u = 10usize;
    let r = ilut_crtp(&a, &IlutOpts::new(8, 1e-3, u));
    let report = r.threshold.unwrap();
    if !report.control_triggered {
        let expected = 1e-3 * r.r11 / (u as f64 * (a.nnz() as f64).sqrt());
        assert!(
            (report.mu - expected).abs() < 1e-12 * expected.max(1e-300),
            "mu {} vs eq.24 {expected}",
            report.mu
        );
    }
}

#[test]
fn ilut_control_triggers_on_absurd_mu() {
    // u_estimate = 1 with a huge phi shrink forces mu large enough that
    // the very first drop violates (22): control must undo and disable.
    let a = fill_heavy();
    let mut opts = IlutOpts::new(8, 1e-2, 1);
    opts.phi_factor = 1e-12; // essentially no drop budget
    let r = ilut_crtp(&a, &opts);
    let report = r.threshold.unwrap();
    assert!(report.control_triggered, "control should have triggered");
    assert_eq!(report.mu, 0.0, "thresholding must be disabled after undo");
    // With thresholding disabled the result matches plain LU_CRTP.
    let lu_res = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-2));
    assert_eq!(r.rank, lu_res.rank);
    assert!(report.dropped_mass_sq == 0.0);
}

#[test]
fn ilut_aggressive_drops_at_least_fixed() {
    let a = fill_heavy();
    let lu_res = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-2));
    let mut fixed = IlutOpts::new(8, 1e-2, lu_res.iterations.max(1));
    fixed.strategy = DropStrategy::Fixed;
    let mut aggr = fixed.clone();
    aggr.strategy = DropStrategy::Aggressive;
    let rf = ilut_crtp(&a, &fixed);
    let ra = ilut_crtp(&a, &aggr);
    assert!(rf.converged && ra.converged);
    let ea = ra.exact_error(&a, Parallelism::SEQ);
    let bound = 1e-2 * ra.a_norm_f + ra.threshold.as_ref().unwrap().dropped_mass_sq.sqrt();
    assert!(ea <= bound * 1.000001);
    // Aggressive thresholding uses the full budget, so it drops at
    // least as much mass as the fixed-mu variant.
    assert!(
        ra.threshold.as_ref().unwrap().dropped_mass_sq + 1e-300
            >= rf.threshold.as_ref().unwrap().dropped_mass_sq,
    );
}

#[test]
fn ilut_with_disabled_thresholding_equals_lu_crtp() {
    // phi_factor = 0 gives a zero drop budget: the control triggers on
    // the first drop attempt and the run degenerates to plain LU_CRTP.
    let a = small_circuit();
    let r_lu = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-3));
    let mut opts = IlutOpts::new(8, 1e-3, 4);
    opts.phi_factor = 0.0;
    let r_il = ilut_crtp(&a, &opts);
    assert_eq!(r_lu.rank, r_il.rank);
    assert_eq!(r_lu.pivot_cols, r_il.pivot_cols);
    assert_eq!(r_lu.factor_nnz(), r_il.factor_nnz());
    assert_eq!(r_il.threshold.as_ref().unwrap().dropped, 0);
}

// ---------- RandUBV ----------

#[test]
fn ubv_meets_tolerance() {
    let a = small_fem();
    for tau in [1e-1, 1e-3] {
        let r = rand_ubv(&a, &UbvOpts::new(8, tau));
        assert!(r.converged, "tau={tau}");
        let exact = r.exact_error(&a, Parallelism::SEQ);
        assert!(exact < 1.05 * tau * r.a_norm_f, "tau={tau}: {exact}");
    }
}

#[test]
fn ubv_factors_are_orthonormal_and_b_bidiagonal() {
    let a = small_circuit();
    let k = 6;
    let r = rand_ubv(&a, &UbvOpts::new(k, 1e-2));
    assert!(r.u.orthogonality_error() < 1e-10);
    assert!(r.v.orthogonality_error() < 1e-10);
    // B block upper bidiagonal: zero outside diagonal + first
    // superdiagonal block row.
    for bj in 0..r.rank / k {
        for bi in 0..r.rank / k {
            if bi == bj || bi + 1 == bj {
                continue;
            }
            for i in 0..k {
                for j in 0..k {
                    let v = r.b.get(bi * k + i, bj * k + j);
                    assert!(
                        v.abs() < 1e-8,
                        "B block ({bi},{bj}) entry ({i},{j}) = {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn ubv_b_equals_ut_a_v() {
    let a = small_circuit();
    let r = rand_ubv(&a, &UbvOpts::new(5, 1e-2));
    let av = lra_sparse::spmm_dense(&a, &r.v, Parallelism::SEQ);
    let utav = matmul_tn(&r.u, &av, Parallelism::SEQ);
    assert!(
        utav.max_abs_diff(&r.b) < 1e-8,
        "B != U^T A V (max diff {})",
        utav.max_abs_diff(&r.b)
    );
}

#[test]
fn ubv_comparable_iterations_to_qb_p0() {
    // Table II: RandUBV does roughly the work of RandQB_EI(p=0) per
    // iteration and often needs fewer (here: allow a small slack).
    let a = small_fem();
    let qb = rand_qb_ei(&a, &QbOpts::new(8, 1e-3).with_power(0)).unwrap();
    let ubv = rand_ubv(&a, &UbvOpts::new(8, 1e-3));
    assert!(ubv.converged && qb.converged);
    assert!(
        ubv.iterations <= qb.iterations + 2,
        "ubv {} vs qb(p0) {}",
        ubv.iterations,
        qb.iterations
    );
}

// ---------- Cross-method comparisons (paper shape checks) ----------

#[test]
fn all_methods_agree_on_reachable_quality() {
    let a = small_circuit();
    let tau = 1e-2;
    let qb = rand_qb_ei(&a, &QbOpts::new(8, tau)).unwrap();
    let lu = lu_crtp(&a, &LuCrtpOpts::new(8, tau));
    let il = ilut_crtp(&a, &IlutOpts::new(8, tau, lu.iterations.max(1)));
    let ub = rand_ubv(&a, &UbvOpts::new(8, tau));
    let nf = a.fro_norm();
    for (name, err) in [
        ("qb", qb.exact_error(&a, Parallelism::SEQ)),
        ("lu", lu.exact_error(&a, Parallelism::SEQ)),
        (
            "ilut",
            il.exact_error(&a, Parallelism::SEQ)
                - il.threshold.as_ref().unwrap().dropped_mass_sq.sqrt(),
        ),
        ("ubv", ub.exact_error(&a, Parallelism::SEQ)),
    ] {
        assert!(err < 1.05 * tau * nf, "{name}: {err} vs {}", tau * nf);
    }
}

#[test]
fn timers_populated_for_each_method() {
    use lra_core::KernelId;
    let a = small_fem();
    let qb = rand_qb_ei(&a, &QbOpts::new(8, 1e-2).with_power(1)).unwrap();
    assert!(!qb.timers.get(KernelId::Sketch).is_zero());
    assert!(!qb.timers.get(KernelId::Orth).is_zero());
    assert!(!qb.timers.get(KernelId::PowerIter).is_zero());
    let lu = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-2));
    assert!(!lu.timers.get(KernelId::ColTournament).is_zero());
    assert!(!lu.timers.get(KernelId::RowTournament).is_zero());
    assert!(!lu.timers.get(KernelId::Schur).is_zero());
}
