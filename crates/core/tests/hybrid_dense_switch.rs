//! The fill-aware hybrid Schur kernel (`dense_switch`) against the
//! always-sparse path.
//!
//! The dense scatter path is constructed to replay the sparse merge's
//! exact floating-point chains, so the factorization must agree with
//! the always-sparse run — normwise (the acceptance bound) and in fact
//! bitwise — at every threshold, for both LU_CRTP and ILUT_CRTP, and
//! through the sharded SPMD driver. Also covers the `dense_switch`
//! validation surface and the `MemStats` / gauge accounting of dense
//! transitions.

use lra_core::{
    ilut_crtp, ilut_crtp_spmd, lu_crtp, IlutOpts, InvalidInput, LuCrtpOpts, LuCrtpResult,
    DEFAULT_DENSE_SWITCH,
};
use lra_sparse::{add_scaled, CscMatrix};

/// Fill-heavy fluid-style block matrix — dense Schur columns appear
/// within a couple of iterations, so the hybrid actually switches.
fn fill_heavy() -> CscMatrix {
    lra_matgen::with_decay(&lra_matgen::fluid_block(12, 10, 31), 1e-7, 33)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_same_factorization(hybrid: &LuCrtpResult, sparse: &LuCrtpResult, what: &str) {
    assert_eq!(hybrid.rank, sparse.rank, "{what}: rank");
    assert_eq!(hybrid.iterations, sparse.iterations, "{what}: iterations");
    assert_eq!(hybrid.converged, sparse.converged, "{what}: converged");
    assert_eq!(hybrid.pivot_rows, sparse.pivot_rows, "{what}: pivot_rows");
    assert_eq!(hybrid.pivot_cols, sparse.pivot_cols, "{what}: pivot_cols");
    // Normwise agreement — the acceptance requirement for the hybrid.
    let l_rel = add_scaled(&hybrid.l, -1.0, &sparse.l).fro_norm()
        / sparse.l.fro_norm().max(f64::MIN_POSITIVE);
    let u_rel = add_scaled(&hybrid.u, -1.0, &sparse.u).fro_norm()
        / sparse.u.fro_norm().max(f64::MIN_POSITIVE);
    assert!(l_rel <= 1e-12, "{what}: L relative diff {l_rel}");
    assert!(u_rel <= 1e-12, "{what}: U relative diff {u_rel}");
    // In fact the paths are bitwise identical by construction — pin it.
    assert_eq!(bits(hybrid.l.values()), bits(sparse.l.values()), "{what}: L bits");
    assert_eq!(bits(hybrid.u.values()), bits(sparse.u.values()), "{what}: U bits");
    assert_eq!(
        hybrid.indicator.to_bits(),
        sparse.indicator.to_bits(),
        "{what}: indicator"
    );
}

#[test]
fn ilut_hybrid_matches_always_sparse_across_taus() {
    let a = fill_heavy();
    for tau in [1e-2, 1e-4] {
        let baseline = ilut_crtp(&a, &IlutOpts::new(8, tau, 4));
        assert!(baseline.converged, "tau={tau}: {:?}", baseline.breakdown);
        // From "switch almost every corrected column" (f64::MIN_POSITIVE)
        // through the benchmarked default to "never switch" (1.0).
        for thr in [f64::MIN_POSITIVE, 0.05, DEFAULT_DENSE_SWITCH, 1.0] {
            let mut opts = IlutOpts::new(8, tau, 4);
            opts.base = opts.base.with_dense_switch(thr);
            let hybrid = ilut_crtp(&a, &opts);
            assert_same_factorization(&hybrid, &baseline, &format!("tau={tau} thr={thr}"));
        }
    }
}

#[test]
fn lu_hybrid_matches_always_sparse() {
    let a = fill_heavy();
    let baseline = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-3));
    let hybrid = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-3).with_dense_switch(0.05));
    assert_same_factorization(&hybrid, &baseline, "lu thr=0.05");
}

#[test]
fn sequential_hybrid_records_dense_switch_gauge() {
    let a = fill_heavy();
    let opts = IlutOpts::new(8, 1e-2, 4);
    let mut hybrid_opts = opts.clone();
    hybrid_opts.base = hybrid_opts.base.with_dense_switch(0.05);
    let _ = ilut_crtp(&a, &hybrid_opts);
    match lra_obs::metrics::global().get("kernel.dense_switch") {
        Some(lra_obs::metrics::MetricValue::Gauge(v)) => {
            assert!(v > 0.0, "expected dense transitions, gauge = {v}");
        }
        other => panic!("kernel.dense_switch gauge missing: {other:?}"),
    }
}

#[test]
fn spmd_hybrid_matches_and_counts_transitions() {
    let a = fill_heavy();
    let opts = IlutOpts::new(8, 1e-2, 4);
    let mut hybrid_opts = opts.clone();
    hybrid_opts.base = hybrid_opts.base.with_dense_switch(0.05);
    for np in [1usize, 2] {
        let mut base = lra_comm::run_infallible(np, |ctx| ilut_crtp_spmd(ctx, &a, &opts));
        let mut hyb = lra_comm::run_infallible(np, |ctx| ilut_crtp_spmd(ctx, &a, &hybrid_opts));
        let b = base.swap_remove(0);
        let h = hyb.swap_remove(0);
        assert!(b.converged, "np={np}: {:?}", b.breakdown);
        assert_same_factorization(&h, &b, &format!("spmd np={np}"));
        let mem_b = b.mem.expect("sharded mem report");
        let mem_h = h.mem.expect("sharded mem report");
        assert_eq!(mem_b.dense_switch_cols, 0, "np={np}: knob off must count 0");
        assert!(
            mem_h.dense_switch_cols > 0,
            "np={np}: expected dense transitions"
        );
    }
}

#[test]
fn dense_switch_validation() {
    let mut opts = LuCrtpOpts::new(8, 1e-2);
    for bad in [0.0, -0.5, 2.0, f64::NAN, f64::INFINITY] {
        opts.dense_switch = Some(bad);
        match opts.validate() {
            Err(InvalidInput::BadDenseSwitch { dense_switch }) => {
                assert!(dense_switch.is_nan() || dense_switch == bad);
            }
            other => panic!("dense_switch={bad}: expected BadDenseSwitch, got {other:?}"),
        }
    }
    opts.dense_switch = Some(1.0);
    assert!(opts.validate().is_ok(), "1.0 is a legal threshold");
    opts.dense_switch = None;
    assert!(opts.validate().is_ok(), "None is the default");

    // The invalid threshold also surfaces through IlutOpts::validate.
    let mut iopts = IlutOpts::new(8, 1e-2, 4);
    iopts.base.dense_switch = Some(f64::NAN);
    assert!(matches!(
        iopts.validate(),
        Err(InvalidInput::BadDenseSwitch { .. })
    ));
}

#[test]
#[should_panic(expected = "dense_switch must be finite and in (0, 1]")]
fn with_dense_switch_panics_on_out_of_range() {
    let _ = LuCrtpOpts::new(8, 1e-2).with_dense_switch(1.5);
}
