//! Rank-revealing property tests: LU_CRTP's panel R diagonals
//! effectively approximate the singular values of `A` (the Section III
//! premise behind ILUT_CRTP's convergence argument), and RandQB_EI's
//! indicator history yields the approximated minimum rank of Figs. 2-3.

use lra_core::{lu_crtp, rand_qb_ei, LuCrtpOpts, QbOpts};
use lra_dense::{min_rank_for_tolerance, singular_values};

#[test]
fn lucrtp_r_diag_tracks_singular_values() {
    // Known spectrum via the generator; LU_CRTP's estimates must track
    // it within modest ratios ("on average close to one").
    let sigmas: Vec<f64> = (0..24).map(|i| 2f64.powf(-(i as f64) / 2.0)).collect();
    let a = lra_matgen::spectrum(200, 160, &sigmas, 10, 41);
    let sv = singular_values(&a.to_dense());
    let r = lu_crtp(&a, &LuCrtpOpts::new(4, 1e-6));
    let est = r.singular_value_estimates();
    assert!(est.len() >= 12, "need enough estimates, got {}", est.len());
    let mut log_ratio_sum = 0.0;
    let mut count = 0;
    for (j, &e) in est.iter().take(16).enumerate() {
        let ratio = e / sv[j];
        assert!(
            ratio > 0.05 && ratio < 5.0,
            "estimate {j}: {e} vs sigma {} (ratio {ratio})",
            sv[j]
        );
        log_ratio_sum += ratio.ln().abs();
        count += 1;
    }
    // Geometric-mean deviation well under 2x.
    assert!((log_ratio_sum / count as f64).exp() < 2.0);
}

#[test]
fn lucrtp_estimates_are_roughly_decreasing() {
    let a = lra_matgen::with_decay(&lra_matgen::circuit(200, 4, 3, 43), 1e-6, 44);
    let r = lu_crtp(&a, &LuCrtpOpts::new(8, 1e-4));
    let est = r.singular_value_estimates();
    // Monotone up to tournament noise: allow small local inversions.
    for w in est.windows(2) {
        assert!(w[1] <= w[0] * 3.0, "gross inversion: {w:?}");
    }
    assert!(est.first().unwrap() > est.last().unwrap());
}

#[test]
fn qb_min_rank_for_matches_tsvd_reference() {
    let a = lra_matgen::with_decay(&lra_matgen::economic(300, 6, 45), 1e-6, 46);
    let sv = singular_values(&a.to_dense());
    let k = 8;
    let tight = rand_qb_ei(&a, &QbOpts::new(k, 1e-3).with_power(2)).unwrap();
    for tau in [1e-1, 1e-2] {
        let exact = min_rank_for_tolerance(&sv, tau);
        let approx = tight.min_rank_for(tau).expect("tight run reached tau");
        assert!(approx >= exact, "approx cannot beat the TSVD bound");
        assert!(
            approx <= exact + 2 * k,
            "tau={tau}: approx {approx} vs exact {exact}"
        );
    }
    // A tolerance the run never reached.
    assert_eq!(tight.min_rank_for(1e-9), None);
}
