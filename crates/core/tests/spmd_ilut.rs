//! Tests for the rank-distributed ILUT_CRTP driver.

use lra_core::{ilut_crtp, ilut_crtp_dist, lu_crtp_dist, IlutOpts, LuCrtpOpts, Parallelism};

fn fill_heavy() -> lra_sparse::CscMatrix {
    lra_matgen::with_decay(&lra_matgen::fluid_block(12, 10, 31), 1e-7, 33)
}

#[test]
fn spmd_ilut_converges_with_bounded_error() {
    let a = fill_heavy();
    let tau = 1e-2;
    for np in [1usize, 3, 5] {
        let lu = lu_crtp_dist(&a, &LuCrtpOpts::new(8, tau), np);
        let il = ilut_crtp_dist(&a, &IlutOpts::new(8, tau, lu.iterations.max(1)), np);
        assert!(il.converged, "np={np}: {:?}", il.breakdown);
        let report = il.threshold.as_ref().expect("threshold report");
        let exact = il.exact_error(&a, Parallelism::SEQ);
        let bound = tau * il.a_norm_f + report.dropped_mass_sq.sqrt();
        assert!(exact <= bound * 1.000001, "np={np}: {exact} vs {bound}");
        // Fill-in reduced vs the distributed LU on this matrix.
        assert!(
            il.factor_nnz() <= lu.factor_nnz(),
            "np={np}: ilut {} vs lu {}",
            il.factor_nnz(),
            lu.factor_nnz()
        );
    }
}

#[test]
fn spmd_ilut_ranks_agree_and_drop_identically() {
    let a = fill_heavy();
    let results = lra_comm::run_infallible(4, |ctx| {
        let r = lra_core::ilut_crtp_spmd(ctx, &a, &IlutOpts::new(8, 1e-2, 4));
        let rep = r.threshold.as_ref().unwrap();
        (
            r.rank,
            r.factor_nnz(),
            rep.dropped,
            rep.mu.to_bits(),
            rep.dropped_mass_sq.to_bits(),
        )
    });
    for r in &results[1..] {
        assert_eq!(r, &results[0], "ranks diverged in thresholding");
    }
    assert!(results[0].2 > 0, "expected drops on a fill-in heavy matrix");
}

#[test]
fn spmd_ilut_matches_shared_memory_mu() {
    // mu (eq. 24) is determined by tau, |R(1,1)| and nnz(A); the
    // shared-memory and distributed runs must agree on it whenever the
    // first tournament picks the same leading pivot magnitude.
    let a = fill_heavy();
    let shared = ilut_crtp(&a, &IlutOpts::new(8, 1e-2, 4));
    let dist = ilut_crtp_dist(&a, &IlutOpts::new(8, 1e-2, 4), 3);
    let mu_s = shared.threshold.as_ref().unwrap().mu;
    let mu_d = dist.threshold.as_ref().unwrap().mu;
    // Same formula; |R(1,1)| can differ slightly with merge order.
    assert!(
        (mu_s - mu_d).abs() <= 0.5 * mu_s.max(mu_d),
        "mu mismatch: {mu_s} vs {mu_d}"
    );
}

#[test]
fn spmd_ilut_control_triggers_like_shared() {
    let a = fill_heavy();
    let mut opts = IlutOpts::new(8, 1e-2, 1);
    opts.phi_factor = 1e-12;
    let r = ilut_crtp_dist(&a, &opts, 4);
    let rep = r.threshold.as_ref().unwrap();
    assert!(rep.control_triggered);
    assert_eq!(rep.mu, 0.0);
    assert_eq!(rep.dropped, 0);
}
