//! Criterion end-to-end benchmarks of the four fixed-precision
//! algorithms on a fixed mid-size workload, plus the DESIGN.md
//! ablations that operate at algorithm level: COLAMD modes, L21
//! formation, and fixed vs. aggressive ILUT thresholding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lra_core::{
    ilut_crtp, lu_crtp, rand_qb_ei, rand_ubv, DropStrategy, IlutOpts, LFormation, LuCrtpOpts,
    OrderingMode, QbOpts, UbvOpts,
};
use lra_sparse::CscMatrix;
use std::hint::black_box;

fn workload() -> CscMatrix {
    lra_matgen::with_decay_rank(&lra_matgen::circuit(1500, 5, 8, 21), 1e-6, 400, 22)
}

fn bench_methods(c: &mut Criterion) {
    let a = workload();
    let tau = 1e-2;
    let k = 16;
    let mut g = c.benchmark_group("fixed_precision_methods");
    g.sample_size(10);
    for p in [0usize, 1, 2] {
        g.bench_with_input(BenchmarkId::new("rand_qb_ei", p), &p, |b, &p| {
            b.iter(|| rand_qb_ei(black_box(&a), &QbOpts::new(k, tau).with_power(p)).unwrap())
        });
    }
    g.bench_function("rand_ubv", |b| {
        b.iter(|| rand_ubv(black_box(&a), &UbvOpts::new(k, tau)))
    });
    g.bench_function("lu_crtp", |b| {
        b.iter(|| lu_crtp(black_box(&a), &LuCrtpOpts::new(k, tau)))
    });
    let lu_its = lu_crtp(&a, &LuCrtpOpts::new(k, tau)).iterations.max(1);
    g.bench_function("ilut_crtp", |b| {
        b.iter(|| ilut_crtp(black_box(&a), &IlutOpts::new(k, tau, lu_its)))
    });
    g.finish();
}

fn bench_ordering_ablation(c: &mut Criterion) {
    let a = workload();
    let tau = 1e-2;
    let k = 16;
    let mut g = c.benchmark_group("ablation_colamd");
    g.sample_size(10);
    for (name, mode) in [
        ("natural", OrderingMode::Natural),
        ("first_iter", OrderingMode::FirstIteration),
        ("every_iter", OrderingMode::EveryIteration),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| lu_crtp(black_box(&a), &LuCrtpOpts::new(k, tau).with_ordering(mode)))
        });
    }
    g.finish();
}

fn bench_l_formation_ablation(c: &mut Criterion) {
    let a = workload();
    let tau = 1e-2;
    let k = 16;
    let mut g = c.benchmark_group("ablation_l_formation");
    g.sample_size(10);
    for (name, lf) in [("direct", LFormation::Direct), ("q_based", LFormation::QBased)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut o = LuCrtpOpts::new(k, tau);
                o.l_formation = lf;
                lu_crtp(black_box(&a), &o)
            })
        });
    }
    g.finish();
}

fn bench_drop_strategy_ablation(c: &mut Criterion) {
    let a = workload();
    let tau = 1e-2;
    let k = 16;
    let lu_its = lu_crtp(&a, &LuCrtpOpts::new(k, tau)).iterations.max(1);
    let mut g = c.benchmark_group("ablation_ilut_strategy");
    g.sample_size(10);
    for (name, strat) in [
        ("fixed_mu", DropStrategy::Fixed),
        ("aggressive", DropStrategy::Aggressive),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut o = IlutOpts::new(k, tau, lu_its);
                o.strategy = strat;
                ilut_crtp(black_box(&a), &o)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_methods,
    bench_ordering_ablation,
    bench_l_formation_ablation,
    bench_drop_strategy_ablation
);
criterion_main!(benches);
