//! Criterion micro-benchmarks of the hot kernels, validating the
//! asymptotic cost claims of Section IV:
//! - QR_TP column tournament ~ `O(k^2 nnz)` (flat vs binary tree
//!   ablation, TSQR vs Gram panel-R ablation);
//! - SpGEMM / SpMM (the Schur-complement and sketch engines);
//! - TSQR vs unblocked Householder QR;
//! - COLAMD-style ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lra_dense::DenseMatrix;
use lra_par::Parallelism;
use lra_qrtp::TournamentTree;
use std::hint::black_box;

fn bench_tournament(c: &mut Criterion) {
    let mut g = c.benchmark_group("qr_tp");
    g.sample_size(10);
    let a = lra_matgen::with_decay(&lra_matgen::circuit(2000, 5, 8, 1), 1e-6, 2);
    for k in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::new("binary", k), &k, |b, &k| {
            b.iter(|| {
                lra_qrtp::tournament_columns(
                    black_box(&a),
                    None,
                    k,
                    TournamentTree::Binary,
                    Parallelism::SEQ,
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("flat", k), &k, |b, &k| {
            b.iter(|| {
                lra_qrtp::tournament_columns(
                    black_box(&a),
                    None,
                    k,
                    TournamentTree::Flat,
                    Parallelism::SEQ,
                )
            })
        });
    }
    g.finish();
}

fn bench_panel_r(c: &mut Criterion) {
    let mut g = c.benchmark_group("panel_r");
    g.sample_size(10);
    let a = lra_matgen::with_decay(&lra_matgen::fluid_block(50, 40, 3), 1e-6, 4);
    let idx: Vec<usize> = (0..64).collect();
    g.bench_function("tsqr", |b| {
        b.iter(|| lra_qrtp::panel_r(black_box(&a), &idx, Parallelism::SEQ))
    });
    g.bench_function("gram_cholesky", |b| {
        b.iter(|| lra_qrtp::panel_r_gram(black_box(&a), &idx, Parallelism::SEQ))
    });
    g.finish();
}

fn bench_spgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("spgemm");
    g.sample_size(10);
    for n in [500usize, 1000, 2000] {
        let a = lra_matgen::circuit(n, 5, 4, 7);
        let b_mat = lra_matgen::circuit(n, 5, 4, 8);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| lra_sparse::spgemm(black_box(&a), black_box(&b_mat), Parallelism::SEQ))
        });
    }
    g.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmm_dense");
    g.sample_size(10);
    let a = lra_matgen::circuit(4000, 5, 8, 9);
    for k in [16usize, 64] {
        let d = DenseMatrix::from_fn(4000, k, |i, j| ((i + j) % 13) as f64 - 6.0);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| lra_sparse::spmm_dense(black_box(&a), black_box(&d), Parallelism::SEQ))
        });
    }
    g.finish();
}

fn bench_tsqr(c: &mut Criterion) {
    let mut g = c.benchmark_group("tall_skinny_qr");
    g.sample_size(10);
    let a = DenseMatrix::from_fn(8000, 32, |i, j| ((i * 31 + j * 7) % 17) as f64 - 8.0);
    g.bench_function("tsqr", |b| {
        b.iter(|| lra_dense::tsqr(black_box(&a), Parallelism::SEQ))
    });
    g.bench_function("householder", |b| {
        b.iter(|| {
            let f = lra_dense::qr(black_box(&a), Parallelism::SEQ);
            f.q_thin(Parallelism::SEQ)
        })
    });
    g.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordering");
    g.sample_size(10);
    let a = lra_matgen::fem2d(50, 50, 11);
    g.bench_function("colamd", |b| {
        b.iter(|| lra_ordering::colamd(black_box(&a)))
    });
    g.bench_function("etree_postorder", |b| {
        b.iter(|| lra_ordering::etree_postorder(black_box(&a)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tournament,
    bench_panel_r,
    bench_spgemm,
    bench_spmm,
    bench_tsqr,
    bench_ordering
);
criterion_main!(benches);
