//! Multi-tenant job-engine throughput bench (`BENCH_serve.json`).
//!
//! Drives the `lra-serve` [`Server`] through a deterministic
//! mixed-priority workload that exercises every scheduler mechanism —
//! rank packing, priority preemption with checkpointed park/resume, a
//! deadline-free drain, and a factor-cache round trip — then emits a
//! frozen-schema BENCH report with one entry per served job plus
//! engine-level metrics (throughput, preemptions, cache traffic).
//!
//! The run *gates* on engine behavior: it exits nonzero if any job is
//! lost or interrupted, if no preemption happened, if the repeated
//! request missed the cache, or if the preempted-and-resumed job's
//! factors differ bitwise from an uninterrupted solo run on the same
//! rank count. CI's `serve-smoke` job relies on those gates.

use std::sync::Arc;
use std::time::Instant;

use lra_bench::{timed, BenchConfig, USAGE};
use lra_core::{ilut_crtp_spmd_checkpointed, IlutOpts, LuCrtpResult};
use lra_obs::{BenchEntry, BenchReport, KernelTime, MetricsRegistry, BENCH_SCHEMA_VERSION};
use lra_serve::{Algorithm, JobReport, JobSpec, Server, ServerConfig};
use lra_sparse::CscMatrix;

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| fail("--out requires a value")),
            _ => rest.push(a),
        }
    }
    let cfg = BenchConfig::parse_args(&rest).unwrap_or_else(|err| fail(&err));
    let np = cfg.max_np.clamp(2, 4);
    let tenants = if cfg.quick { 6 } else { 10 };

    println!(
        "SERVE — multi-tenant soak: pool of {np} ranks, {tenants} tenants + victim/urgent/repeat (schema v{BENCH_SCHEMA_VERSION})"
    );

    let counter = |name: &str| match lra_obs::metrics::global().get(name) {
        Some(lra_obs::MetricValue::Counter(c)) => c,
        _ => 0,
    };
    let preemptions0 = counter("serve.preemptions");
    let resumes0 = counter("serve.resumes");
    let cache_hits0 = counter("serve.cache_hit");
    let driver_calls0 = counter("serve.driver_calls");

    // The long low-priority victim spans hundreds of block iterations,
    // so the urgent arrival preempts it mid-factorization.
    let victim_a = Arc::new(slow_matrix(cfg.quick));
    let victim_opts = IlutOpts::new(2, 1e-6, 8);
    let urgent_a = Arc::new(tenant_matrix(99));
    let tenant_opts = IlutOpts::new(4, 1e-3, 8);

    let server = Server::new(ServerConfig::default().with_ranks(np));
    let t0 = Instant::now();

    let victim = server
        .submit(
            JobSpec::new(Arc::clone(&victim_a), Algorithm::IlutCrtp(victim_opts.clone()))
                .with_ranks(np)
                .with_priority(0)
                .with_label("victim"),
        )
        .unwrap_or_else(|e| fail(&format!("victim rejected: {e}")));
    server.wait_until_running(victim);
    let urgent = server
        .submit(
            JobSpec::new(Arc::clone(&urgent_a), Algorithm::IlutCrtp(tenant_opts.clone()))
                .with_ranks(np)
                .with_priority(9)
                .with_label("urgent"),
        )
        .unwrap_or_else(|e| fail(&format!("urgent rejected: {e}")));

    // Mixed tenants: varied priorities and rank-group sizes pack onto
    // whatever the high-priority traffic leaves idle.
    let tenant_mats: Vec<Arc<CscMatrix>> = (0..tenants).map(|i| Arc::new(tenant_matrix(i as u64))).collect();
    let tenant_ids: Vec<_> = tenant_mats
        .iter()
        .enumerate()
        .map(|(i, m)| {
            server
                .submit(
                    JobSpec::new(Arc::clone(m), Algorithm::IlutCrtp(tenant_opts.clone()))
                        .with_ranks(1 + i % np)
                        .with_priority(1 + (i % 7) as u8)
                        .with_label(format!("tenant-{i}")),
                )
                .unwrap_or_else(|e| fail(&format!("tenant {i} rejected: {e}")))
        })
        .collect();

    let urgent_report = server.wait(urgent);
    let victim_report = server.wait(victim);
    let tenant_reports: Vec<JobReport> = tenant_ids.into_iter().map(|id| server.wait(id)).collect();

    // Round trip: the same request again must come from the cache.
    let repeat = server
        .submit(
            JobSpec::new(Arc::clone(&urgent_a), Algorithm::IlutCrtp(tenant_opts.clone()))
                .with_ranks(np)
                .with_priority(5)
                .with_label("repeat"),
        )
        .unwrap_or_else(|e| fail(&format!("repeat rejected: {e}")));
    let repeat_report = server.wait(repeat);
    let soak_wall = t0.elapsed().as_secs_f64();
    server.shutdown();

    let preemptions = counter("serve.preemptions") - preemptions0;
    let resumes = counter("serve.resumes") - resumes0;
    let cache_hits = counter("serve.cache_hit") - cache_hits0;
    let driver_calls = counter("serve.driver_calls") - driver_calls0;
    let total_jobs = 3 + tenant_reports.len();
    println!(
        "{total_jobs} jobs in {soak_wall:.2}s ({:.2} jobs/s): {preemptions} preemptions, {resumes} resumes, {cache_hits} cache hits, {driver_calls} driver calls",
        total_jobs as f64 / soak_wall
    );

    // ---- Gates ---------------------------------------------------------
    let mut failures: Vec<String> = Vec::new();
    let all: Vec<(&str, &JobReport)> = std::iter::once(("victim", &victim_report))
        .chain(std::iter::once(("urgent", &urgent_report)))
        .chain(std::iter::once(("repeat", &repeat_report)))
        .chain(tenant_reports.iter().map(|r| ("tenant", r)))
        .collect();
    for (label, r) in &all {
        if r.outcome.is_interrupted() {
            failures.push(format!("{label} ({}) ended interrupted — job lost", r.job));
        }
    }
    if preemptions == 0 {
        failures.push("no preemption happened — the urgent job never displaced the victim".into());
    }
    if resumes < preemptions {
        failures.push(format!("{preemptions} preemptions but only {resumes} resumes"));
    }
    if !repeat_report.from_cache || cache_hits == 0 {
        failures.push("the repeated request was not served from the factor cache".into());
    }
    if repeat_report.driver_calls != 0 {
        failures.push("the cache hit consumed a driver call".into());
    }

    // Bitwise gate: the preempted-and-resumed victim equals a solo
    // uninterrupted run on the same rank count.
    let (solo_victim, _) = timed(|| solo(&victim_a, &victim_opts, np));
    let served_victim = victim_report.outcome.clone().into_value();
    if !same_bits(&served_victim, &solo_victim) {
        failures.push("victim factors differ bitwise from the uninterrupted solo run".into());
    }

    // ---- Report --------------------------------------------------------
    let reg = MetricsRegistry::new();
    reg.set_gauge("serve.bench.jobs", total_jobs as f64);
    reg.set_gauge("serve.bench.soak_wall_s", soak_wall);
    reg.set_gauge("serve.bench.throughput_jobs_per_s", total_jobs as f64 / soak_wall);
    reg.set_gauge("serve.bench.preemptions", preemptions as f64);
    reg.set_gauge("serve.bench.resumes", resumes as f64);
    reg.set_gauge("serve.bench.cache_hits", cache_hits as f64);
    reg.set_gauge("serve.bench.driver_calls", driver_calls as f64);
    reg.set_gauge("serve.bench.victim_preemptions", victim_report.preemptions as f64);

    let mut entries = Vec::new();
    entries.push(entry("serve/victim", &victim_a, &victim_opts, np, &victim_report, &cfg));
    entries.push(entry("serve/urgent", &urgent_a, &tenant_opts, np, &urgent_report, &cfg));
    entries.push(entry("serve/repeat", &urgent_a, &tenant_opts, np, &repeat_report, &cfg));
    for (i, r) in tenant_reports.iter().enumerate() {
        entries.push(entry(
            "serve/tenant",
            &tenant_mats[i],
            &tenant_opts,
            1 + i % np,
            r,
            &cfg,
        ));
    }

    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        bench: "serve".to_string(),
        quick: cfg.quick,
        scale: cfg.scale,
        max_np: np,
        entries,
        metrics: reg.to_json(),
    };
    report
        .validate()
        .unwrap_or_else(|err| fail(&format!("generated report failed validation: {err}")));
    let mut text = report.to_json_string();
    text.push('\n');
    std::fs::write(&out_path, text)
        .unwrap_or_else(|err| fail(&format!("cannot write {out_path}: {err}")));
    println!("wrote {out_path} ({} entries)", report.entries.len());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("OK: zero lost jobs, {preemptions} preemptions, {cache_hits} cache hits, bitwise victim resume");
}

fn slow_matrix(quick: bool) -> CscMatrix {
    let (nx, ny) = if quick { (18, 14) } else { (24, 20) };
    lra_matgen::with_decay(&lra_matgen::fem2d(nx, ny, 11), 1e-6, 3)
}

fn tenant_matrix(seed: u64) -> CscMatrix {
    lra_matgen::with_decay(&lra_matgen::fem2d(8, 6, 20 + seed), 1e-6, 3)
}

fn solo(a: &CscMatrix, opts: &IlutOpts, np: usize) -> LuCrtpResult {
    let mut r = lra_comm::run_infallible(np, |ctx| {
        ilut_crtp_spmd_checkpointed(ctx, a, opts, None).expect("no hooks, no mode mismatch")
    });
    r.swap_remove(0)
}

fn same_bits(x: &LuCrtpResult, y: &LuCrtpResult) -> bool {
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    x.rank == y.rank
        && x.pivot_rows == y.pivot_rows
        && x.pivot_cols == y.pivot_cols
        && bits(x.l.values()) == bits(y.l.values())
        && bits(x.u.values()) == bits(y.u.values())
}

fn entry(
    label: &str,
    a: &CscMatrix,
    opts: &IlutOpts,
    np: usize,
    r: &JobReport,
    cfg: &BenchConfig,
) -> BenchEntry {
    let res = r.outcome.clone().into_value();
    let wall = r.wall.as_secs_f64();
    let true_rel = res.exact_error(a, cfg.par()) / res.a_norm_f;
    BenchEntry {
        algorithm: label.to_string(),
        matrix: format!("fem2d({}x{})", a.rows(), a.cols()),
        rows: a.rows(),
        cols: a.cols(),
        nnz: a.nnz(),
        tau: opts.base.tau,
        k: opts.base.k,
        np,
        wall_s: wall,
        // Service latency is queueing + parks + kernels; the engine
        // does not attribute it to kernel buckets, so the whole wall
        // lands in `other` (the schema's catch-all).
        kernels: vec![KernelTime {
            kernel: "other".to_string(),
            seconds: wall,
        }],
        rank: res.rank,
        iterations: res.iterations,
        converged: res.converged,
        est_rel_err: res.indicator / res.a_norm_f,
        true_rel_err: true_rel,
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE} [--out PATH]");
    std::process::exit(2);
}
