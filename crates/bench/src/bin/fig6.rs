//! Fig. 6: runtime breakdown of the computational kernels in RandQB_EI
//! for matrix M2' and tau = 1e-3, across block sizes `k`, power
//! parameters p in {0, 2} and worker counts `np` (simulated from
//! recorded chunk costs, as in Figs. 4-5). Kernels: the sketch
//! `A Omega` + correction, orthonormalization, power iterations, and
//! the `B = Q^T A` update.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin fig6 [-- --quick]
//! ```

use lra_bench::BenchConfig;
use lra_core::{rand_qb_ei, Parallelism, QbOpts};
use lra_par::record;

fn main() {
    let cfg = BenchConfig::from_args();
    let tau = if cfg.quick { 1e-2 } else { 1e-3 };
    let tm = lra_matgen::m2(cfg.scale);
    let a = &tm.a;
    let ks: Vec<usize> = if cfg.quick {
        vec![32]
    } else {
        vec![16, 32, 64]
    };
    let nps = [1usize, 4, 16, 64, 256];
    println!(
        "FIG 6 — kernel breakdown, RandQB_EI on {} (tau={tau:.0e})",
        tm.label
    );
    for &k in &ks {
        for p in [0usize, 2] {
            let par = Parallelism::new(1 << 20);
            record::start();
            let res = rand_qb_ei(a, &QbOpts::new(k, tau).with_power(p).with_par(par));
            let profile = record::finish();
            let (its, rank) = res
                .as_ref()
                .map(|r| (r.iterations, r.rank))
                .unwrap_or((0, 0));
            println!("\n--- RandQB_EI p={p}, k={k} (its {its}, rank {rank}) ---");
            let mut base = profile.simulated_by_label(1);
            base.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            print!("{:<14}", "kernel \\ np");
            for np in nps {
                print!(" {np:>9}");
            }
            println!();
            for (label, _) in base.iter().take(6) {
                print!("{label:<14}");
                for np in nps {
                    let by = profile.simulated_by_label(np);
                    let v = by
                        .iter()
                        .find(|(l, _)| l == label)
                        .map(|(_, t)| *t)
                        .unwrap_or(0.0);
                    print!(" {v:>9.4}");
                }
                println!();
            }
            print!("{:<14}", "TOTAL");
            for np in nps {
                print!(" {:>9.4}", profile.simulated_time(np));
            }
            println!();
        }
    }
}
