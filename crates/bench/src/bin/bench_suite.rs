//! Machine-readable benchmark baseline: the quick preset sweep as one
//! `BENCH_*.json` report.
//!
//! Runs RandQB_EI, LU_CRTP, ILUT_CRTP (shared-memory) and ILUT_CRTP
//! over SPMD ranks on the Table-I preset matrices, and writes a
//! [`lra_obs::BenchReport`]: per-algorithm wall time, per-kernel
//! breakdown (an `other` bucket absorbs untimed work so buckets sum to
//! the wall time), achieved rank `K`, and true vs. estimated relative
//! Frobenius error. The unified metrics registry snapshot (comm
//! counters, kernel histograms) rides along under `metrics`.
//!
//! ```sh
//! LRA_TRACE=trace.json cargo run -p lra-bench --release --bin bench_suite -- --quick
//! cargo run -p lra-bench --bin bench_suite -- --validate BENCH_pr2.json
//! ```
//!
//! With `LRA_TRACE=path.json` set, a Chrome trace (one lane per SPMD
//! rank, driver lanes for shared-memory runs) is written on exit.

use lra_bench::{fmt_s, timed, BenchConfig, USAGE};
use lra_core::{
    ilut_crtp, ilut_crtp_spmd, ilut_crtp_spmd_checkpointed, lu_crtp, rand_qb_ei, CheckpointStore,
    IlutOpts, LuCrtpOpts, LuCrtpResult, QbOpts, RecoveryHooks, RunConfig,
};
use lra_matgen::TestMatrix;
use lra_obs::{BenchEntry, BenchReport, KernelTime, MetricsRegistry, BENCH_SCHEMA_VERSION};
use lra_sparse::CscMatrix;

/// Block size used for every algorithm in the suite.
const BLOCK_K: usize = 32;

fn main() {
    // bench_suite-specific flags are peeled off before the shared
    // BenchConfig parse.
    let mut out_path = "BENCH_pr2.json".to_string();
    let mut validate_path: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| fail("--out requires a value")),
            "--validate" => {
                validate_path =
                    Some(args.next().unwrap_or_else(|| fail("--validate requires a value")));
            }
            _ => rest.push(a),
        }
    }
    if let Some(path) = validate_path {
        validate_file(&path);
        return;
    }
    let cfg = BenchConfig::parse_args(&rest).unwrap_or_else(|err| fail(&err));

    lra_obs::trace::init_from_env();
    let reg = MetricsRegistry::new();
    let np = cfg.max_np.clamp(2, 4);
    let taus: &[f64] = if cfg.quick { &[1e-2] } else { &[1e-2, 1e-4] };
    let matrices: Vec<TestMatrix> = if cfg.quick {
        vec![lra_matgen::m1(cfg.scale), lra_matgen::m2(cfg.scale)]
    } else {
        vec![
            lra_matgen::m1(cfg.scale),
            lra_matgen::m2(cfg.scale),
            lra_matgen::m3(cfg.scale),
        ]
    };

    println!(
        "BENCH SUITE — {} matrices x tau {taus:?}, k={BLOCK_K}, np={np} (schema v{BENCH_SCHEMA_VERSION})",
        matrices.len()
    );
    let mut entries: Vec<BenchEntry> = Vec::new();
    for tm in &matrices {
        for &tau in taus {
            entries.extend(run_combination(tm, tau, np, &cfg, &reg));
        }
    }

    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        bench: "bench_suite".to_string(),
        quick: cfg.quick,
        scale: cfg.scale,
        max_np: cfg.max_np,
        entries,
        metrics: reg.to_json(),
    };
    report
        .validate()
        .unwrap_or_else(|err| fail(&format!("generated report failed validation: {err}")));
    let mut text = report.to_json_string();
    text.push('\n');
    std::fs::write(&out_path, text)
        .unwrap_or_else(|err| fail(&format!("cannot write {out_path}: {err}")));
    println!("\nwrote {out_path} ({} entries)", report.entries.len());
    match lra_obs::trace::flush_to_env_path() {
        Ok(Some(path)) => println!("wrote Chrome trace to {path} (open in chrome://tracing)"),
        Ok(None) => {}
        Err(err) => fail(&format!("cannot write trace: {err}")),
    }
}

/// All four algorithm entries for one `(matrix, tau)` combination.
fn run_combination(
    tm: &TestMatrix,
    tau: f64,
    np: usize,
    cfg: &BenchConfig,
    reg: &MetricsRegistry,
) -> Vec<BenchEntry> {
    let a = &tm.a;
    let par = cfg.par();
    let mut out = Vec::with_capacity(4);
    println!(
        "\n--- {} ({}x{}, {} nnz), tau={tau:.0e} ---",
        tm.label,
        a.rows(),
        a.cols(),
        a.nnz()
    );

    // RandQB_EI.
    let mut qb_opts = QbOpts::new(BLOCK_K, tau);
    qb_opts.par = par;
    let (qb, wall) = timed(|| rand_qb_ei(a, &qb_opts).expect("tau above indicator floor"));
    qb.timers.export_metrics(reg, "rand_qb_ei");
    let true_rel = qb.exact_error(a, par) / qb.a_norm_f;
    out.push(entry(
        "rand_qb_ei",
        tm,
        tau,
        1,
        wall,
        qb.timers.report_with_other(wall),
        qb.rank,
        qb.iterations,
        qb.converged,
        qb.indicator / qb.a_norm_f,
        true_rel,
    ));

    // LU_CRTP (also provides the iteration estimate ILUT needs).
    let lu_opts = LuCrtpOpts::new(BLOCK_K, tau).with_par(par);
    let (lu, wall) = timed(|| lu_crtp(a, &lu_opts));
    lu.timers.export_metrics(reg, "lu_crtp");
    push_lu_entry(&mut out, "lu_crtp", tm, tau, 1, wall, &lu, a, par);
    let u_estimate = lu.iterations.max(1);

    // ILUT_CRTP, shared-memory.
    let mut ilut_opts = IlutOpts::new(BLOCK_K, tau, u_estimate);
    ilut_opts.base.par = par;
    let (il, wall) = timed(|| ilut_crtp(a, &ilut_opts));
    il.timers.export_metrics(reg, "ilut_crtp");
    push_lu_entry(&mut out, "ilut_crtp", tm, tau, 1, wall, &il, a, par);

    // ILUT_CRTP over SPMD ranks (the traced distributed path).
    let (spmd_report, wall) = timed(|| {
        lra_comm::run_with(np, &RunConfig::default(), |ctx| {
            ilut_crtp_spmd(ctx, a, &ilut_opts)
        })
    });
    for (rank, stats) in spmd_report.stats.iter().enumerate() {
        stats.export_metrics(reg, rank);
    }
    let dist = spmd_report
        .results
        .into_iter()
        .next()
        .expect("np >= 1")
        .expect("fault-free SPMD run");
    dist.timers.export_metrics(reg, "ilut_crtp_spmd");
    push_lu_entry(&mut out, "ilut_crtp_spmd", tm, tau, np, wall, &dist, a, par);

    // Same distributed run with per-iteration checkpointing — the
    // recovery layer's steady-state cost (EXPERIMENTS.md wants this
    // under 10% of the uninterrupted wall time).
    let store = CheckpointStore::in_memory();
    let hooks = RecoveryHooks::new(&store, 1);
    let (ckpt_report, ckpt_wall) = timed(|| {
        lra_comm::run_with(np, &RunConfig::default(), |ctx| {
            ilut_crtp_spmd_checkpointed(ctx, a, &ilut_opts, Some(&hooks))
        })
    });
    let ckpt = ckpt_report
        .results
        .into_iter()
        .next()
        .expect("np >= 1")
        .expect("fault-free SPMD run")
        .expect("fresh store, so no resume mode mismatch");
    ckpt.timers.export_metrics(reg, "ilut_crtp_spmd_ckpt");
    reg.set_gauge("recover.checkpoint_overhead_pct", (ckpt_wall / wall - 1.0) * 100.0);
    println!(
        "    checkpointing: {} snapshots, overhead {:+.1}% ({:.4}s vs {:.4}s)",
        store.saves(),
        (ckpt_wall / wall - 1.0) * 100.0,
        ckpt_wall,
        wall
    );
    push_lu_entry(&mut out, "ilut_crtp_spmd_ckpt", tm, tau, np, ckpt_wall, &ckpt, a, par);
    out
}

#[allow(clippy::too_many_arguments)]
fn push_lu_entry(
    out: &mut Vec<BenchEntry>,
    algorithm: &str,
    tm: &TestMatrix,
    tau: f64,
    np: usize,
    wall: f64,
    res: &LuCrtpResult,
    a: &CscMatrix,
    par: lra_core::Parallelism,
) {
    let true_rel = res.exact_error(a, par) / res.a_norm_f;
    out.push(entry(
        algorithm,
        tm,
        tau,
        np,
        wall,
        res.timers.report_with_other(wall),
        res.rank,
        res.iterations,
        res.converged,
        res.indicator / res.a_norm_f,
        true_rel,
    ));
}

#[allow(clippy::too_many_arguments)]
fn entry(
    algorithm: &str,
    tm: &TestMatrix,
    tau: f64,
    np: usize,
    wall: f64,
    kernels: Vec<(&'static str, f64)>,
    rank: usize,
    iterations: usize,
    converged: bool,
    est_rel_err: f64,
    true_rel_err: f64,
) -> BenchEntry {
    println!(
        "{algorithm:<16} np={np} wall={:<8} rank={rank:<4} est={est_rel_err:.3e} true={true_rel_err:.3e}",
        fmt_s(wall)
    );
    BenchEntry {
        algorithm: algorithm.to_string(),
        matrix: tm.label.clone(),
        rows: tm.a.rows(),
        cols: tm.a.cols(),
        nnz: tm.a.nnz(),
        tau,
        k: BLOCK_K,
        np,
        wall_s: wall,
        kernels: kernels
            .into_iter()
            .map(|(kernel, seconds)| KernelTime {
                kernel: kernel.to_string(),
                seconds,
            })
            .collect(),
        rank,
        iterations,
        converged,
        est_rel_err,
        true_rel_err,
    }
}

/// `--validate PATH`: parse + structurally validate an existing report.
fn validate_file(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|err| fail(&format!("cannot read {path}: {err}")));
    match BenchReport::from_json_str(&text).and_then(|r| r.validate().map(|()| r)) {
        Ok(r) => println!(
            "{path}: valid BENCH schema v{} ({} entries)",
            r.schema_version,
            r.entries.len()
        ),
        Err(err) => fail(&format!("{path}: invalid report: {err}")),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE} [--out PATH] [--validate PATH]");
    std::process::exit(2);
}
