//! Per-rank memory scaling of the sharded SPMD driver.
//!
//! Runs ILUT_CRTP over SPMD ranks at `np = 1` and `np = 4` on a
//! fill-heavy preset and reports the per-rank peak resident Schur
//! storage (`mem.peak_rank_bytes`, `mem.peak_rank_nnz`) that the
//! rank-owned data distribution is supposed to shrink. The run fails
//! (exit 1) unless quadrupling the ranks at least halves the per-rank
//! peak nnz — the memory-scaling claim CI smoke-checks on every push:
//!
//! ```sh
//! cargo run -p lra-bench --release --bin mem_scaling -- --quick --out BENCH_mem.json
//! ```
//!
//! The `BENCH_*.json` artifact carries one entry per rank count plus
//! `mem.*.np{N}` gauges under `metrics`, so baselines diff
//! mechanically. The same runs also export the overlap counters of the
//! pipelined re-shard (`comm.overlap_posted.np{N}`,
//! `comm.overlap_wait_s.np{N}`, `comm.bytes.alltoallv.np{N}`) so the
//! memory artifact records how much wire traffic the sharding paid and
//! that the overlapped path was engaged while it was measured.

use lra_bench::{fmt_s, timed, BenchConfig, USAGE};
use lra_core::{ilut_crtp_spmd, IlutOpts, LuCrtpResult, MemStats};
use lra_matgen::TestMatrix;
use lra_obs::{BenchEntry, BenchReport, KernelTime, MetricsRegistry, BENCH_SCHEMA_VERSION};

/// Block size for the sweep.
const BLOCK_K: usize = 16;
/// Relative tolerance for the sweep.
const TAU: f64 = 1e-2;

fn main() {
    let mut out_path = "BENCH_mem_scaling.json".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| fail("--out requires a value")),
            _ => rest.push(a),
        }
    }
    let cfg = BenchConfig::parse_args(&rest).unwrap_or_else(|err| fail(&err));

    // A fill-heavy block matrix: dense coupled blocks make the Schur
    // complement fill in, which is exactly the storage the sharded
    // driver distributes.
    let tm = matrix(cfg.scale);
    let a = &tm.a;
    println!(
        "MEM SCALING — {} ({}x{}, {} nnz), tau={TAU:.0e}, k={BLOCK_K} (schema v{BENCH_SCHEMA_VERSION})",
        tm.label,
        a.rows(),
        a.cols(),
        a.nnz()
    );

    let opts = IlutOpts::new(BLOCK_K, TAU, 4);
    let reg = MetricsRegistry::new();
    let mut entries: Vec<BenchEntry> = Vec::new();
    let mut peaks: Vec<(usize, MemStats)> = Vec::new();
    let a2a = lra_comm::COLLECTIVE_FAMILIES
        .iter()
        .position(|f| *f == "alltoallv")
        .expect("alltoallv is a collective family");
    for np in [1usize, 4] {
        let (report, wall) = timed(|| {
            lra_comm::run_with(np, &lra_comm::RunConfig::default(), |ctx| {
                ilut_crtp_spmd(ctx, a, &opts)
            })
        });
        let posted: u64 = report.stats.iter().map(|s| s.overlap_posted).sum();
        let wait_ns: u64 = report.stats.iter().map(|s| s.overlap_wait_ns).sum();
        let wire: u64 = report.stats.iter().map(|s| s.bytes_on_wire[a2a]).sum();
        let res = report.unwrap_all().swap_remove(0);
        let mem = res.mem.expect("sharded driver reports mem");
        reg.set_gauge(&format!("mem.peak_rank_bytes.np{np}"), mem.peak_rank_bytes as f64);
        reg.set_gauge(&format!("mem.peak_rank_nnz.np{np}"), mem.peak_rank_nnz as f64);
        reg.set_gauge(&format!("comm.overlap_posted.np{np}"), posted as f64);
        reg.set_gauge(&format!("comm.overlap_wait_s.np{np}"), wait_ns as f64 / 1e9);
        reg.set_gauge(&format!("comm.bytes.alltoallv.np{np}"), wire as f64);
        println!(
            "np={np}: wall={} rank={} peak_rank_nnz={} peak_rank_bytes={}",
            fmt_s(wall),
            res.rank,
            mem.peak_rank_nnz,
            mem.peak_rank_bytes
        );
        entries.push(entry(&tm, np, wall, &res, cfg.par()));
        peaks.push((np, mem));
    }

    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        bench: "mem_scaling".to_string(),
        quick: cfg.quick,
        scale: cfg.scale,
        max_np: 4,
        entries,
        metrics: reg.to_json(),
    };
    report
        .validate()
        .unwrap_or_else(|err| fail(&format!("generated report failed validation: {err}")));
    let mut text = report.to_json_string();
    text.push('\n');
    std::fs::write(&out_path, text)
        .unwrap_or_else(|err| fail(&format!("cannot write {out_path}: {err}")));
    println!("wrote {out_path} ({} entries)", report.entries.len());

    // The tentpole claim: resident Schur storage is O(nnz/np) + panel,
    // so 4x the ranks must at least halve the per-rank peak.
    let p1 = peaks[0].1;
    let p4 = peaks[1].1;
    if 2 * p4.peak_rank_nnz >= p1.peak_rank_nnz || p4.peak_rank_bytes >= p1.peak_rank_bytes {
        eprintln!(
            "FAIL: np=4 peak ({} nnz, {} bytes) not below half of np=1 peak ({} nnz, {} bytes)",
            p4.peak_rank_nnz, p4.peak_rank_bytes, p1.peak_rank_nnz, p1.peak_rank_bytes
        );
        std::process::exit(1);
    }
    println!(
        "OK: per-rank peak nnz {} -> {} ({:.2}x) going np=1 -> np=4",
        p1.peak_rank_nnz,
        p4.peak_rank_nnz,
        p1.peak_rank_nnz as f64 / p4.peak_rank_nnz.max(1) as f64
    );
}

fn matrix(scale: usize) -> TestMatrix {
    let base = lra_matgen::fluid_block(12 * scale.max(1), 10, 31);
    let a = lra_matgen::with_decay(&base, 1e-7, 33);
    TestMatrix {
        label: format!("fluid{}x10", 12 * scale.max(1)),
        name: "fluid_block+decay".to_string(),
        description: "fill-heavy coupled fluid blocks with spectral decay".to_string(),
        a,
    }
}

fn entry(
    tm: &TestMatrix,
    np: usize,
    wall: f64,
    res: &LuCrtpResult,
    par: lra_core::Parallelism,
) -> BenchEntry {
    let true_rel = res.exact_error(&tm.a, par) / res.a_norm_f;
    BenchEntry {
        algorithm: "ilut_crtp_spmd".to_string(),
        matrix: tm.label.clone(),
        rows: tm.a.rows(),
        cols: tm.a.cols(),
        nnz: tm.a.nnz(),
        tau: TAU,
        k: BLOCK_K,
        np,
        wall_s: wall,
        kernels: res
            .timers
            .report_with_other(wall)
            .into_iter()
            .map(|(kernel, seconds)| KernelTime {
                kernel: kernel.to_string(),
                seconds,
            })
            .collect(),
        rank: res.rank,
        iterations: res.iterations,
        converged: res.converged,
        est_rel_err: res.indicator / res.a_norm_f,
        true_rel_err: true_rel,
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE} [--out PATH]");
    std::process::exit(2);
}
