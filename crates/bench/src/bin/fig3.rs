//! Fig. 3: runtime vs. approximation quality for M5', with the
//! x-range extended into the deep-accuracy tail (the regime where the
//! paper observes ranks above 40% of n and LU_CRTP's fill-in makes it
//! uncompetitive). The TSVD reference is skipped, as in the paper
//! ("evaluating the minimum rank required ... was too time consuming")
//! unless `--tsvd` is forced.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin fig3 [-- --quick]
//! ```

use lra_bench::{figures::run_accuracy_vs_cost, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("FIG 3 — runtime vs. approximation quality, extended range (M5')");
    let taus: Vec<f64> = if cfg.quick {
        vec![1e-1, 1e-2]
    } else {
        vec![1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4]
    };
    let matrices = vec![(lra_matgen::m5(cfg.scale), 64usize)];
    run_accuracy_vs_cost(matrices, &taus, &cfg);
}
