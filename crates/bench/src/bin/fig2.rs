//! Fig. 2: runtime vs. approximation quality for M3' and M4', with the
//! minimum rank required (TSVD, behind `--tsvd`) and the approximated
//! minimum rank from a tight RandQB_EI p=2 run.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin fig2 [-- --quick --tsvd]
//! ```

use lra_bench::{figures::run_accuracy_vs_cost, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("FIG 2 — runtime vs. approximation quality (M3', M4')");
    let taus: Vec<f64> = if cfg.quick {
        vec![1e-1, 1e-2]
    } else {
        vec![1e-1, 3e-2, 1e-2, 3e-3, 1e-3]
    };
    let matrices = vec![
        (lra_matgen::m3(cfg.scale), 32usize),
        (lra_matgen::m4(cfg.scale), 64),
    ];
    run_accuracy_vs_cost(matrices, &taus, &cfg);
}
