//! Fig. 4: strong scaling.
//!
//! Left plot analogue: speedup for M2' (k = 32) at fixed approximation
//! quality. Right plot analogue: speedups for M4' and M5' (k = 64).
//! Methods: RandQB_EI (p = 1), LU_CRTP, ILUT_CRTP.
//!
//! The host may have fewer cores than the paper's cluster (even one);
//! the scaling curve is therefore produced by the `lra-par` cost
//! recorder: one instrumented run measures every parallel chunk, and
//! the runtime at each `np` is the per-region LPT makespan plus serial
//! time (see `lra_par::record`). This models exactly the effects the
//! paper discusses — LU_CRTP stops scaling when the tournament's global
//! reduction levels (few chunks) dominate; RandQB_EI's wide GEMM
//! regions scale further; ILUT_CRTP does the least work but saturates
//! earliest. Measured single-core wall time is reported alongside.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin fig4 [-- --quick]
//! ```

use lra_bench::{timed, BenchConfig};
use lra_core::{ilut_crtp, lu_crtp, rand_qb_ei, IlutOpts, LuCrtpOpts, Parallelism, QbOpts};
use lra_par::record;

fn profile_of(f: impl FnOnce()) -> lra_par::Profile {
    record::start();
    f();
    record::finish()
}

fn main() {
    let cfg = BenchConfig::from_args();
    let nps: Vec<usize> = if cfg.quick {
        vec![1, 2, 4, 8, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
    };
    println!("FIG 4 — strong scaling (simulated from recorded chunk costs; see header)");

    let plans = [
        (lra_matgen::m2(cfg.scale), 32usize, 1e-3f64),
        (lra_matgen::m4(cfg.scale), 64, 1e-2),
        (lra_matgen::m5(cfg.scale), 64, 1e-2),
    ];
    let n_plans = if cfg.quick { 1 } else { plans.len() };

    for (tm, k, tau) in plans.into_iter().take(n_plans) {
        let a = &tm.a;
        println!(
            "\n=== {} (k={k}, tau={tau:.0e}, {}x{}, nnz {}) ===",
            tm.label,
            a.rows(),
            a.cols(),
            a.nnz()
        );
        // Instrumented runs (recording forces a sequential execution and
        // measures every would-be-parallel chunk).
        let par = Parallelism::new(1 << 20); // chunk widths, not real threads
        let (lu_its, t_lu_seq) = {
            let (r, t) = timed(|| lu_crtp(a, &LuCrtpOpts::new(k, tau)));
            (r.iterations.max(1), t)
        };
        let p_qb = profile_of(|| {
            rand_qb_ei(a, &QbOpts::new(k, tau).with_power(1).with_par(par))
                .map(|_| ())
                .unwrap_or(())
        });
        let p_lu = profile_of(|| {
            lu_crtp(a, &LuCrtpOpts::new(k, tau).with_par(par));
        });
        let p_il = profile_of(|| {
            ilut_crtp(a, &{
                let mut o = IlutOpts::new(k, tau, lu_its);
                o.base.par = par;
                o
            });
        });
        println!(
            "measured sequential wall: LU_CRTP {:.3}s (its {}); recorded walls: QB {:.3}s, LU {:.3}s, ILUT {:.3}s",
            t_lu_seq, lu_its, p_qb.wall, p_lu.wall, p_il.wall
        );
        println!(
            "{:>6} | {:>14} | {:>14} | {:>14}",
            "np", "RandQB_EI p=1", "LU_CRTP", "ILUT_CRTP"
        );
        for &np in &nps {
            println!(
                "{:>6} | {:>14.2} | {:>14.2} | {:>14.2}",
                np,
                p_qb.simulated_speedup(np),
                p_lu.simulated_speedup(np),
                p_il.simulated_speedup(np)
            );
        }
        // Where each method stops scaling (speedup gain < 5% per
        // doubling) — the "knee" the paper discusses.
        let knee = |p: &lra_par::Profile| -> usize {
            let mut np = 1;
            loop {
                let s1 = p.simulated_speedup(np);
                let s2 = p.simulated_speedup(np * 2);
                if s2 < s1 * 1.05 || np >= 4096 {
                    return np;
                }
                np *= 2;
            }
        };
        println!(
            "scaling knees (last np with >5% gain/doubling): QB {}, LU {}, ILUT {}",
            knee(&p_qb),
            knee(&p_lu),
            knee(&p_il)
        );
    }
}
