//! Fig. 1 (left): effectiveness of ILUT_CRTP thresholding over the
//! 197-matrix suite, k = 8, tau = 1e-6, factorization stopped at the
//! numerical rank.
//!
//! Prints the empirical distribution (deciles) of:
//! - nnz(LU_CRTP factors) / nnz(ILUT_CRTP factors) (blue solid in the paper)
//! - nnz(LU_CRTP w/o COLAMD) / nnz(ILUT_CRTP factors) (red dashed)
//! - nnz(LU_CRTP COLAMD-every-iter) / nnz(ILUT_CRTP) (yellow)
//! - max density of A^(i) for LU_CRTP resp. ILUT_CRTP (green)
//!
//! plus the Section VI-A statistics: error <= tau*||A||_F everywhere,
//! estimator agreement, control never triggered, effectiveness rate,
//! cases where ILUT produced MORE nonzeros.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin fig1_left [-- --quick]
//! ```

use lra_bench::{numerical_rank, BenchConfig};
use lra_core::{ilut_crtp, lu_crtp, IlutOpts, LuCrtpOpts, OrderingMode, Parallelism};
use lra_dense::singular_values;

fn quantiles(series: &mut [f64]) -> String {
    if series.is_empty() {
        return "(empty)".into();
    }
    series.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| series[((series.len() - 1) as f64 * p) as usize];
    format!(
        "min {:6.2}  p10 {:6.2}  p25 {:6.2}  p50 {:6.2}  p75 {:6.2}  p90 {:6.2}  max {:7.2}",
        q(0.0),
        q(0.10),
        q(0.25),
        q(0.50),
        q(0.75),
        q(0.90),
        q(1.0)
    )
}

fn main() {
    let cfg = BenchConfig::from_args();
    let tau = 1e-6;
    let k = 8;
    let suite = lra_matgen::suite();
    let step = if cfg.quick { 8 } else { 1 };
    println!("FIG 1 (left) — ILUT_CRTP effectiveness over the suite (k={k}, tau={tau:.0e})");

    let mut ratio_default = Vec::new();
    let mut ratio_no_colamd = Vec::new();
    let mut ratio_every = Vec::new();
    let mut maxfill_lu = Vec::new();
    let mut maxfill_ilut = Vec::new();
    let mut effective = 0usize;
    let mut worse = 0usize;
    let mut err_ok = 0usize;
    let mut est_agree = 0usize;
    let mut control_triggered = 0usize;
    let mut ran = 0usize;

    for tm in suite.iter().step_by(step) {
        let a = &tm.a;
        let nf = a.fro_norm();
        if nf == 0.0 {
            continue;
        }
        // Numerical rank via the TSVD reference (all suite matrices are
        // small); the factorization is stopped there, as in the paper.
        let sv = singular_values(&a.to_dense());
        let nrank = numerical_rank(&sv, a.rows(), a.cols());
        if nrank < k {
            continue; // mirrors the paper's omission of degenerate cases
        }
        let base = LuCrtpOpts::new(k, tau).with_max_rank(nrank);
        let lu = lu_crtp(a, &base);
        let lu_nat = lu_crtp(a, &base.clone().with_ordering(OrderingMode::Natural));
        let lu_every = lu_crtp(a, &base.clone().with_ordering(OrderingMode::EveryIteration));
        let il = ilut_crtp(a, &{
            let mut o = IlutOpts::new(k, tau, lu.iterations.max(1));
            o.base.max_rank = Some(nrank);
            o
        });
        ran += 1;
        let il_nnz = il.factor_nnz().max(1) as f64;
        ratio_default.push(lu.factor_nnz() as f64 / il_nnz);
        ratio_no_colamd.push(lu_nat.factor_nnz() as f64 / il_nnz);
        ratio_every.push(lu_every.factor_nnz() as f64 / il_nnz);
        maxfill_lu.push(
            lu.trace
                .iter()
                .map(|t| t.schur_density)
                .fold(0.0f64, f64::max),
        );
        maxfill_ilut.push(
            il.trace
                .iter()
                .map(|t| t.schur_density)
                .fold(0.0f64, f64::max),
        );
        if lu.factor_nnz() > il.factor_nnz() {
            effective += 1;
        }
        if il.factor_nnz() > lu.factor_nnz() {
            worse += 1;
        }
        // Section VI-A checks.
        let exact = il.exact_error(a, Parallelism::SEQ);
        if exact <= tau * nf * 1.01 || !il.converged {
            err_ok += 1;
        }
        let report = il.threshold.as_ref().unwrap();
        if (il.indicator - exact).abs() <= report.dropped_mass_sq.sqrt() + 1e-9 * nf {
            est_agree += 1;
        }
        if report.control_triggered {
            control_triggered += 1;
        }
    }

    println!("\nmatrices run: {ran}");
    println!("ECDF of nnz ratios over ILUT_CRTP factors (higher is better):");
    println!("  LU_CRTP (COLAMD first iter) : {}", quantiles(&mut ratio_default));
    println!("  LU_CRTP (no COLAMD)         : {}", quantiles(&mut ratio_no_colamd));
    println!("  LU_CRTP (COLAMD every iter) : {}", quantiles(&mut ratio_every));
    println!("max fill-in density of A^(i):");
    println!("  LU_CRTP                     : {}", quantiles(&mut maxfill_lu));
    println!("  ILUT_CRTP                   : {}", quantiles(&mut maxfill_ilut));
    println!("\nSection VI-A statistics:");
    println!(
        "  thresholding effective (ratio > 1): {} / {} ({:.0}%)",
        effective,
        ran,
        100.0 * effective as f64 / ran.max(1) as f64
    );
    println!("  ILUT produced MORE nnz            : {worse} / {ran}");
    println!("  true error <= tau*||A||_F         : {err_ok} / {ran}");
    println!("  estimator agrees with error       : {est_agree} / {ran}");
    println!("  threshold control triggered       : {control_triggered} / {ran}");
}
