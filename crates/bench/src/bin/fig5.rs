//! Fig. 5: runtime breakdown of the computational kernels in LU_CRTP
//! and ILUT_CRTP for matrix M2' and tau = 1e-3, across block sizes `k`
//! and worker counts `np`.
//!
//! As in Fig. 4, the per-kernel times at each `np` come from the
//! `lra-par` cost recorder (per-kernel label scopes + LPT makespans),
//! so the `np` axis extends beyond the host's core count. Kernels
//! mirror the paper's: column QR_TP, panel (sparse) QR, row QR_TP,
//! permutations/splitting, the `L21` solve, and the Schur complement
//! update.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin fig5 [-- --quick]
//! ```

use lra_bench::BenchConfig;
use lra_core::{ilut_crtp, lu_crtp, IlutOpts, LuCrtpOpts, Parallelism};
use lra_par::record;

fn main() {
    let cfg = BenchConfig::from_args();
    let tau = if cfg.quick { 1e-2 } else { 1e-3 };
    let tm = lra_matgen::m2(cfg.scale);
    let a = &tm.a;
    let ks: Vec<usize> = if cfg.quick {
        vec![32]
    } else {
        vec![16, 32, 64]
    };
    let nps = [1usize, 4, 16, 64, 256];
    println!(
        "FIG 5 — kernel breakdown, LU_CRTP vs ILUT_CRTP on {} (tau={tau:.0e})",
        tm.label
    );

    for &k in &ks {
        let par = Parallelism::new(1 << 20);
        // LU_CRTP instrumented run.
        record::start();
        let lu = lu_crtp(a, &LuCrtpOpts::new(k, tau).with_par(par));
        let p_lu = record::finish();
        // ILUT_CRTP instrumented run (same parameters, u from LU).
        record::start();
        let il = ilut_crtp(a, &{
            let mut o = IlutOpts::new(k, tau, lu.iterations.max(1));
            o.base.par = par;
            o
        });
        let p_il = record::finish();

        for (name, profile, res) in [("LU_CRTP", &p_lu, &lu), ("ILUT_CRTP", &p_il, &il)] {
            println!(
                "\n--- {name}, k = {k} (its {}, rank {}, factor nnz {}) ---",
                res.iterations,
                res.rank,
                res.factor_nnz()
            );
            // Collect the union of labels at np=1, sorted by cost.
            let mut base = profile.simulated_by_label(1);
            base.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            print!("{:<14}", "kernel \\ np");
            for np in nps {
                print!(" {np:>9}");
            }
            println!();
            for (label, _) in base.iter().take(8) {
                print!("{label:<14}");
                for np in nps {
                    let by = profile.simulated_by_label(np);
                    let v = by
                        .iter()
                        .find(|(l, _)| l == label)
                        .map(|(_, t)| *t)
                        .unwrap_or(0.0);
                    print!(" {v:>9.4}");
                }
                println!();
            }
            print!("{:<14}", "TOTAL");
            for np in nps {
                print!(" {:>9.4}", profile.simulated_time(np));
            }
            println!();
        }
    }
}
