//! Table I: the test matrices. Prints label, generator name, size, nnz
//! and problem family for the laptop-scale analogues M1'-M6'.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin table1 [-- --large --scale N]
//! ```

use lra_bench::BenchConfig;

fn main() {
    let cfg = BenchConfig::from_args();
    println!("TABLE I — test matrices (synthetic analogues; see DESIGN.md)");
    println!(
        "{:<6} {:<20} {:>9} {:>10} {:>9}  description",
        "label", "generator", "size", "nnz", "nnz/row"
    );
    lra_bench::rule(78);
    let mut mats = lra_matgen::table1_matrices(cfg.scale);
    if cfg.large {
        mats.push(lra_matgen::m6(cfg.scale));
    }
    for m in &mats {
        println!(
            "{:<6} {:<20} {:>9} {:>10} {:>9.1}  {}",
            m.label,
            m.name,
            m.a.rows(),
            m.a.nnz(),
            m.a.nnz_per_row(),
            m.description
        );
    }
}
