//! Run all four fixed-precision methods on a user-supplied Matrix
//! Market file — the bridge to the paper's *actual* test matrices: with
//! e.g. `bcsstk18.mtx` from the SuiteSparse Collection on disk, this
//! reproduces the corresponding Table II row on real data.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin run_mtx -- path/to/matrix.mtx [tau] [k]
//! ```

use lra_bench::{fmt_s, timed};
use lra_core::{
    ilut_crtp, lu_crtp, rand_qb_ei, rand_ubv, IlutOpts, LuCrtpOpts, Parallelism, QbOpts, UbvOpts,
};
use lra_sparse::read_matrix_market_file;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 2 {
        eprintln!("usage: run_mtx <matrix.mtx> [tau=1e-2] [k=32]");
        std::process::exit(2);
    }
    let path = &args[1];
    let tau: f64 = args.get(2).map(|s| s.parse().expect("tau")).unwrap_or(1e-2);
    let k: usize = args.get(3).map(|s| s.parse().expect("k")).unwrap_or(32);
    let a = match read_matrix_market_file(path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        }
    };
    let par = Parallelism::full();
    println!(
        "{path}: {}x{}, nnz {} ({:.1}/row), ||A||_F = {:.4e}, tau = {tau:.0e}, k = {k}",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.nnz_per_row(),
        a.fro_norm()
    );
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>12} {:>10}",
        "method", "rank", "its", "factor nnz", "indicator", "time [s]"
    );

    let (ubv, t) = timed(|| {
        rand_ubv(&a, &{
            let mut o = UbvOpts::new(k, tau);
            o.par = par;
            o
        })
    });
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>12.3e} {:>10}",
        "RandUBV",
        ubv.rank,
        ubv.iterations,
        "-",
        ubv.indicator,
        fmt_s(t)
    );

    for p in [0usize, 1, 2] {
        let (qb, t) = timed(|| rand_qb_ei(&a, &QbOpts::new(k, tau).with_power(p).with_par(par)));
        match qb {
            Ok(r) => println!(
                "{:<12} {:>6} {:>6} {:>12} {:>12.3e} {:>10}",
                format!("RandQB p={p}"),
                r.rank,
                r.iterations,
                "-",
                r.indicator,
                fmt_s(t)
            ),
            Err(e) => println!("RandQB p={p}: {e}"),
        }
    }

    let (lu, t_lu) = timed(|| lu_crtp(&a, &LuCrtpOpts::new(k, tau).with_par(par)));
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>12.3e} {:>10}   converged={} fill peak {:.3}",
        "LU_CRTP",
        lu.rank,
        lu.iterations,
        lu.factor_nnz(),
        lu.indicator,
        fmt_s(t_lu),
        lu.converged,
        lu.trace
            .iter()
            .map(|x| x.schur_density)
            .fold(0.0f64, f64::max)
    );

    let (il, t_il) = timed(|| {
        ilut_crtp(&a, &{
            let mut o = IlutOpts::new(k, tau, lu.iterations.max(1));
            o.base.par = par;
            o
        })
    });
    let rep = il.threshold.as_ref().unwrap();
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>12.3e} {:>10}   mu={:.2e} ratio_nnz={:.1} speedup={:.1}",
        "ILUT_CRTP",
        il.rank,
        il.iterations,
        il.factor_nnz(),
        il.indicator,
        fmt_s(t_il),
        rep.mu,
        lu.factor_nnz() as f64 / il.factor_nnz().max(1) as f64,
        t_lu / t_il
    );
}
