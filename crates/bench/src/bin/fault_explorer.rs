//! Exhaustive fault-point exploration over the supervised ILUT_CRTP
//! recovery path — the CI gate for the durability layer.
//!
//! For each requested rank count, a clean probe run enumerates every
//! injection site (each iteration × {rank kill, watchdog timeout,
//! mid-overlap kill, mid-overlap stall}, each checkpoint save × every
//! storage-fault flavor, and a budget
//! cancel at every iteration boundary), then one run per site injects
//! the fault and checks the invariants: successful recovery, a typed
//! `RecoveryError`, or a typed budget trip — never a panic; same-grid
//! resumes (including resume-from-cancel) bitwise-identical to the
//! uninterrupted factors; corrupted generations surfaced as
//! `recover.corrupt_checkpoint`. The per-site verdict tables are
//! printed and written as a JSON artifact; any violation exits 1.
//!
//! `--sites comm,overlap,storage,cancel` selects the site families
//! (default all), so CI can split the comm/storage sweep, the
//! mid-overlap sweep, and the cancel sweep into separate jobs with
//! separate artifacts.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin fault_explorer -- \
//!     --np 2,4 --out FAULT_SPACE.json
//! cargo run -p lra-bench --release --bin fault_explorer -- \
//!     --np 2 --sites cancel --out CANCEL_SPACE.json
//! ```

use lra_core::{explore_fault_space, ExploreConfig, IlutOpts, RecoveryPolicy};
use lra_obs::Json;
use std::time::Duration;

/// Block size of the explored factorization.
const BLOCK_K: usize = 4;
/// Relative tolerance of the explored factorization.
const TAU: f64 = 1e-3;

fn fail(msg: &str) -> ! {
    eprintln!("fault_explorer: {msg}");
    eprintln!(
        "usage: fault_explorer [--np LIST] [--out PATH] [--watchdog-ms N] [--lenient] \
         [--sites comm,overlap,storage,cancel]"
    );
    std::process::exit(2);
}

fn main() {
    let mut out_path = "FAULT_SPACE.json".to_string();
    let mut np_list: Vec<usize> = vec![2, 4];
    let mut watchdog_ms: u64 = 300;
    let mut strict = true;
    let (mut comm_sites, mut overlap_sites, mut storage_sites, mut cancel_sites) =
        (true, true, true, true);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sites" => {
                let list = args.next().unwrap_or_else(|| fail("--sites requires a value"));
                comm_sites = false;
                overlap_sites = false;
                storage_sites = false;
                cancel_sites = false;
                for family in list.split(',') {
                    match family.trim() {
                        "comm" => comm_sites = true,
                        "overlap" => overlap_sites = true,
                        "storage" => storage_sites = true,
                        "cancel" => cancel_sites = true,
                        other => fail(&format!("unknown site family {other:?}")),
                    }
                }
            }
            "--out" => out_path = args.next().unwrap_or_else(|| fail("--out requires a value")),
            "--np" => {
                let list = args.next().unwrap_or_else(|| fail("--np requires a value"));
                np_list = list
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().unwrap_or_else(|_| fail("bad --np")))
                    .collect();
                if np_list.is_empty() {
                    fail("--np requires at least one rank count");
                }
            }
            "--watchdog-ms" => {
                watchdog_ms = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--watchdog-ms requires a number"));
            }
            "--lenient" => strict = false,
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    // The small preset: a 2-D FEM mesh with decaying off-diagonal
    // coupling — enough iterations to give the explorer a meaningful
    // site space while keeping one-run-per-site wall time bounded.
    let a = lra_matgen::with_decay(&lra_matgen::fem2d(8, 6, 11), 1e-6, 3);
    let opts = IlutOpts::new(BLOCK_K, TAU, 8);

    let mut all_ok = true;
    let mut per_np = Vec::new();
    for &np in &np_list {
        let cfg = ExploreConfig {
            np,
            ckpt_every: 1,
            watchdog: Duration::from_millis(watchdog_ms),
            stall: Duration::from_millis(watchdog_ms * 3),
            policy: RecoveryPolicy::default().with_backoff(Duration::from_millis(5)),
            comm_sites,
            overlap_sites,
            storage_sites,
            cancel_sites,
            on_disk: None,
            strict,
        };
        println!("==> exploring np={np} …");
        match explore_fault_space(&a, &opts, &cfg) {
            Ok(report) => {
                print!("{}", report.render_table());
                if !report.all_ok() {
                    all_ok = false;
                }
                per_np.push((np, report.to_json()));
            }
            Err(e) => {
                println!("np={np}: probe failed: {e}");
                all_ok = false;
                per_np.push((
                    np,
                    Json::Obj(vec![
                        ("np".to_string(), Json::Num(np as f64)),
                        ("probe_error".to_string(), Json::Str(e)),
                        ("all_ok".to_string(), Json::Bool(false)),
                    ]),
                ));
            }
        }
        println!();
    }

    let artifact = Json::Obj(vec![
        ("schema".to_string(), Json::Str("fault_space.v1".to_string())),
        ("matrix".to_string(), Json::Str("fem2d(8,6) decay 1e-6".to_string())),
        ("k".to_string(), Json::Num(BLOCK_K as f64)),
        ("tau".to_string(), Json::Num(TAU)),
        ("strict".to_string(), Json::Bool(strict)),
        ("all_ok".to_string(), Json::Bool(all_ok)),
        (
            "explorations".to_string(),
            Json::Arr(per_np.into_iter().map(|(_, j)| j).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, artifact.to_string()) {
        fail(&format!("writing {out_path}: {e}"));
    }
    println!("wrote {out_path}");

    if !all_ok {
        eprintln!("fault_explorer: invariant violations detected");
        std::process::exit(1);
    }
}
