//! Fig. 1 (right): fill-in progression of LU_CRTP, iteration by
//! iteration, for matrices M2'-M5' (the y-axis is
//! `nnz(A^(i)) / #rows(A^(i))`, as in the paper).
//!
//! ```sh
//! cargo run -p lra-bench --release --bin fig1_right [-- --quick]
//! ```

use lra_bench::BenchConfig;
use lra_core::{lu_crtp, LuCrtpOpts};

fn main() {
    let cfg = BenchConfig::from_args();
    let par = cfg.par();
    let tau = if cfg.quick { 1e-2 } else { 1e-3 };
    println!("FIG 1 (right) — fill-in per LU_CRTP iteration (tau={tau:.0e})");
    let plans = [
        (lra_matgen::m2(cfg.scale), 32usize),
        (lra_matgen::m3(cfg.scale), 32),
        (lra_matgen::m4(cfg.scale), 64),
        (lra_matgen::m5(cfg.scale), 64),
    ];
    let n_take = if cfg.quick { 2 } else { 4 };
    for (tm, k) in plans.into_iter().take(n_take) {
        let r = lu_crtp(&tm.a, &LuCrtpOpts::new(k, tau).with_par(par));
        print!(
            "{} (k={k}, initial nnz/row {:.1}): ",
            tm.label,
            tm.a.nnz_per_row()
        );
        let series: Vec<String> = r
            .trace
            .iter()
            .map(|t| format!("{:.1}", t.schur_nnz_per_row))
            .collect();
        println!("[{}]", series.join(", "));
        println!(
            "   converged={} rank={} iterations={} peak nnz/row={:.1}",
            r.converged,
            r.rank,
            r.iterations,
            r.trace
                .iter()
                .map(|t| t.schur_nnz_per_row)
                .fold(0.0f64, f64::max)
        );
    }
}
