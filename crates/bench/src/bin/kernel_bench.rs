//! Gated micro-benchmark for the compute kernels under the drivers:
//! the cache-blocked dense GEMM, the fill-aware hybrid Schur path, and
//! the comm/compute overlap of the per-panel re-shard.
//!
//! Three claims are enforced, not just measured (exit 1 on regression):
//!
//! 1. **Blocked GEMM** must beat the naive triple loop by at least
//!    [`GEMM_MIN_SPEEDUP`]x at `n = `[`GEMM_N`] (best-of-[`REPS`],
//!    sequential, after a bitwise-equality sanity check — the blocked
//!    kernel is required to reproduce naive summation order exactly).
//! 2. **Hybrid Schur** (`dense_switch` at the benchmarked default)
//!    must not regress the ILUT_CRTP sweep: best-of-[`REPS`] total
//!    wall across the tau sweep within [`HYBRID_MAX_RATIO`]x of the
//!    always-sparse run on a fill-heavy preset.
//! 3. **Overlap** must hide at least [`OVERLAP_MIN_HIDDEN`] of the
//!    re-shard wall the eager sharded driver pays blocked on the wire
//!    at `np = `[`OVERLAP_NP`]: the overlapped pipeline's skew-free
//!    (min-across-ranks) `overlap_wait_ns` vs the eager oracle's
//!    skew-free `alltoallv_wait_ns`, summed over [`OVERLAP_REPS`]
//!    paired reps.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin kernel_bench -- --out BENCH_kernels.json
//! cargo run -p lra-bench --release --bin kernel_bench -- --validate BENCH_kernels.json
//! ```
//!
//! The `BENCH_kernels.json` report (frozen v1 schema) carries one
//! entry per ILUT run plus dimensionless `kernel.*` gauges
//! (`gemm_speedup`, `gemm_fast_speedup`, `ilut_hybrid_ratio`,
//! `dense_switch_cols`, `overlap_hidden_ratio`) under `metrics`, so CI
//! can diff machine-independent ratios against the committed baseline
//! in `results/`.

use lra_bench::{fmt_s, timed, BenchConfig, USAGE};
use lra_comm::RunConfig;
use lra_core::{
    ilut_crtp, ilut_crtp_spmd, ilut_crtp_spmd_eager, IlutOpts, LuCrtpResult, Parallelism,
    DEFAULT_DENSE_SWITCH,
};
use lra_dense::{matmul, matmul_mode, matmul_naive, DenseMatrix, Numerics};
use lra_obs::{BenchEntry, BenchReport, KernelTime, MetricsRegistry, BENCH_SCHEMA_VERSION};
use lra_sparse::CscMatrix;

/// GEMM problem size for the speedup gate.
const GEMM_N: usize = 512;
/// Minimum blocked-over-naive GEMM speedup (measured margin ~2.6-3.0x).
const GEMM_MIN_SPEEDUP: f64 = 2.0;
/// Minimum fast-mode (FMA tiles) over bitwise blocked GEMM speedup at
/// `n = `[`GEMM_N`]. The FMA tile retires one fused op where the
/// bitwise tile needs a multiply and an add plus a zero-skip branch.
const FAST_MIN_SPEEDUP: f64 = 1.15;
/// Maximum hybrid-over-sparse ILUT sweep wall ratio. The two paths
/// are within noise of each other on the presets (the switch guards
/// against fill pathologies rather than speeding the common case), so
/// the gate is a no-regression bound with headroom for timer jitter.
const HYBRID_MAX_RATIO: f64 = 1.10;
/// Best-of repetitions for the GEMM section (best-of damps CI runner
/// noise; the gated quantities are ratios of bests).
const REPS: usize = 5;
/// Paired blocked/fast repetitions per gate round: that pair's gate
/// margin is fine (1.15x) and both kernels are cheap, so it gets far
/// more samples than the naive loop.
const GEMM_FAST_REPS: usize = 12;
/// Independent median-of-paired-ratio rounds for the fast gate; the
/// best round's median gates (see the comment at the measurement).
const FAST_ROUNDS: usize = 3;
/// Interleaved repetitions per ILUT variant (cheaper runs, tighter
/// gate — more samples).
const ILUT_REPS: usize = 7;
/// Measurement passes for the hybrid gate: the first pass that clears
/// the gate wins; a miss triggers one full re-measure before the run
/// is declared a regression. A contended phase on a shared runner can
/// cover every repetition of one side of the pair — a real hybrid
/// slowdown reproduces in both passes.
const HYBRID_PASSES: usize = 2;
/// Block size for the ILUT sweep.
const BLOCK_K: usize = 16;
/// Rank count for the overlap gate — the acceptance point of the
/// comm/compute-overlap claim.
const OVERLAP_NP: usize = 4;
/// Minimum fraction of the eager re-shard wire wait that the
/// overlapped pipeline must hide: `1 - overlap_wait / eager_wait`.
const OVERLAP_MIN_HIDDEN: f64 = 0.5;
/// Paired eager/overlapped repetitions for the overlap gate. The
/// gated ratio is computed from waits *summed across the pairs*: a
/// single rep in which one rank happens to straggle every iteration
/// (so the skew-free eager wait collapses toward zero and the ratio
/// is meaningless) contributes almost nothing to either sum, while a
/// genuinely un-hidden exchange inflates every rep's numerator.
const OVERLAP_REPS: usize = 5;

fn main() {
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut validate_path: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| fail("--out requires a value")),
            "--validate" => {
                validate_path =
                    Some(args.next().unwrap_or_else(|| fail("--validate requires a value")));
            }
            _ => rest.push(a),
        }
    }
    if let Some(path) = validate_path {
        validate_file(&path);
        return;
    }
    let cfg = BenchConfig::parse_args(&rest).unwrap_or_else(|err| fail(&err));

    let reg = MetricsRegistry::new();
    let mut entries: Vec<BenchEntry> = Vec::new();

    println!("KERNEL BENCH (schema v{BENCH_SCHEMA_VERSION})");
    let gemm_ok = gemm_gate(&reg);
    let hybrid_ok = hybrid_gate(&cfg, &reg, &mut entries);
    let overlap_ok = overlap_gate(&cfg, &reg);

    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        bench: "kernel_bench".to_string(),
        quick: cfg.quick,
        scale: cfg.scale,
        max_np: 1,
        entries,
        metrics: reg.to_json(),
    };
    report
        .validate()
        .unwrap_or_else(|err| fail(&format!("generated report failed validation: {err}")));
    let mut text = report.to_json_string();
    text.push('\n');
    std::fs::write(&out_path, text)
        .unwrap_or_else(|err| fail(&format!("cannot write {out_path}: {err}")));
    println!("wrote {out_path} ({} entries)", report.entries.len());

    if !(gemm_ok && hybrid_ok && overlap_ok) {
        std::process::exit(1);
    }
}

/// Deterministic pseudo-random dense operand (no RNG dependency).
fn dense_operand(n: usize, salt: u64) -> DenseMatrix {
    DenseMatrix::from_fn(n, n, |i, j| {
        let h = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add((j as u64).wrapping_mul(1442695040888963407))
            .wrapping_add(salt);
        ((h >> 11) % 2003) as f64 / 2003.0 - 0.5
    })
}

/// Gate 1: blocked GEMM >= [`GEMM_MIN_SPEEDUP`]x naive at n = [`GEMM_N`].
fn gemm_gate(reg: &MetricsRegistry) -> bool {
    let a = dense_operand(GEMM_N, 1);
    let b = dense_operand(GEMM_N, 2);

    // The speedup is only meaningful under the bitwise contract.
    let blocked = matmul(&a, &b, Parallelism::SEQ);
    let slow = matmul_naive(&a, &b, Parallelism::SEQ);
    let agree = blocked
        .as_slice()
        .iter()
        .zip(slow.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    if !agree {
        eprintln!("FAIL: blocked GEMM is not bitwise equal to naive at n={GEMM_N}");
        return false;
    }

    // The fast-mode kernel answers a different contract: normwise
    // agreement with the bitwise result at the accumulation-error
    // scale (FMA changes the rounding, not the mathematics).
    let fast = matmul_mode(&a, &b, Parallelism::SEQ, Numerics::Fast);
    let norm = slow.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt();
    let diff = fast
        .as_slice()
        .iter()
        .zip(slow.as_slice())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let tol = (GEMM_N as f64) * f64::EPSILON * norm;
    if diff > tol {
        eprintln!("FAIL: fast GEMM normwise error {diff:e} above n*eps*||C|| = {tol:e}");
        return false;
    }

    // Interleaved best-of: alternating the kernels keeps runner load
    // spikes from loading one side of the speedup ratios.
    let mut blocked_s = f64::INFINITY;
    let mut naive_s = f64::INFINITY;
    let mut fast_s = f64::INFINITY;
    for _ in 0..REPS {
        let ((), s) = timed(|| {
            std::hint::black_box(matmul(&a, &b, Parallelism::SEQ));
        });
        blocked_s = blocked_s.min(s);
        let ((), s) = timed(|| {
            std::hint::black_box(matmul_naive(&a, &b, Parallelism::SEQ));
        });
        naive_s = naive_s.min(s);
        let ((), s) = timed(|| {
            std::hint::black_box(matmul_mode(&a, &b, Parallelism::SEQ, Numerics::Fast));
        });
        fast_s = fast_s.min(s);
    }
    // The blocked-vs-fast ratio gates at a much finer margin (1.15x)
    // than blocked-vs-naive (2x), and both kernels run ~5x faster than
    // the naive loop, so that pair gets its own treatment: each rep
    // times blocked and fast back-to-back (same ~30 ms load window)
    // and a *median* of the per-rep ratios damps load spikes in either
    // direction without the lucky-window bias a max-of-ratios would
    // have. [`FAST_ROUNDS`] independent medians are taken and the best
    // one gates: a contended phase of a shared runner depresses whole
    // rounds at a time, while a genuinely regressed kernel shows the
    // same median in every round.
    let mut fast_speedup: f64 = 0.0;
    for _ in 0..FAST_ROUNDS {
        let mut ratios = Vec::with_capacity(GEMM_FAST_REPS);
        for _ in 0..GEMM_FAST_REPS {
            let ((), sb) = timed(|| {
                std::hint::black_box(matmul(&a, &b, Parallelism::SEQ));
            });
            blocked_s = blocked_s.min(sb);
            let ((), sf) = timed(|| {
                std::hint::black_box(matmul_mode(&a, &b, Parallelism::SEQ, Numerics::Fast));
            });
            fast_s = fast_s.min(sf);
            ratios.push(sb / sf.max(1e-12));
        }
        ratios.sort_by(f64::total_cmp);
        fast_speedup = fast_speedup.max(ratios[ratios.len() / 2]);
    }
    let speedup = naive_s / blocked_s.max(1e-12);
    reg.set_gauge("kernel.gemm_n", GEMM_N as f64);
    reg.set_gauge("kernel.gemm_naive_s", naive_s);
    reg.set_gauge("kernel.gemm_blocked_s", blocked_s);
    reg.set_gauge("kernel.gemm_speedup", speedup);
    reg.set_gauge("kernel.gemm_fast_s", fast_s);
    reg.set_gauge("kernel.gemm_fast_speedup", fast_speedup);
    println!(
        "gemm n={GEMM_N}: naive {} blocked {} speedup {speedup:.2}x (gate >= {GEMM_MIN_SPEEDUP}x)",
        fmt_s(naive_s),
        fmt_s(blocked_s)
    );
    println!(
        "gemm n={GEMM_N}: fast {} over bitwise {fast_speedup:.2}x (gate >= {FAST_MIN_SPEEDUP}x)",
        fmt_s(fast_s)
    );
    if speedup < GEMM_MIN_SPEEDUP {
        eprintln!("FAIL: blocked GEMM speedup {speedup:.2}x below {GEMM_MIN_SPEEDUP}x");
        return false;
    }
    if fast_speedup < FAST_MIN_SPEEDUP {
        eprintln!("FAIL: fast GEMM speedup {fast_speedup:.2}x below {FAST_MIN_SPEEDUP}x");
        return false;
    }
    true
}

/// Gate 2: hybrid Schur does not regress the ILUT sweep wall-clock.
fn hybrid_gate(cfg: &BenchConfig, reg: &MetricsRegistry, entries: &mut Vec<BenchEntry>) -> bool {
    // Fill-heavy coupled fluid blocks with decay: the Schur complement
    // densifies within a few panels, so the switch actually engages.
    let dim_blocks = if cfg.quick { 48 } else { 72 } * cfg.scale.max(1);
    let a = lra_matgen::with_decay(&lra_matgen::fluid_block(dim_blocks, 10, 31), 1e-7, 33);
    let label = format!("fluid{dim_blocks}x10");
    let taus: &[f64] = if cfg.quick { &[1e-2] } else { &[1e-2, 1e-3] };
    println!(
        "ilut sweep — {label} ({}x{}, {} nnz), k={BLOCK_K}, taus {taus:?}",
        a.rows(),
        a.cols(),
        a.nnz()
    );

    let sweep = |entries: &mut Vec<BenchEntry>| -> (f64, f64, f64) {
        let mut sparse_total = 0.0;
        let mut hybrid_total = 0.0;
        let mut dense_cols_total = 0.0;
        for &tau in taus {
            let opts = IlutOpts::new(BLOCK_K, tau, 4);
            let mut hopts = opts.clone();
            hopts.base = hopts.base.with_dense_switch(DEFAULT_DENSE_SWITCH);

            // Interleave the repetitions so clock drift and sibling load
            // perturb both variants alike instead of biasing the ratio.
            let (sparse_s, hybrid_s, sparse_res, hybrid_res) =
                best_of_pair(ILUT_REPS, || ilut_crtp(&a, &opts), || ilut_crtp(&a, &hopts));
            // The sequential driver publishes the transition count for the
            // run it just finished; fold the per-tau counts into a total.
            if let Some(lra_obs::metrics::MetricValue::Gauge(v)) =
                lra_obs::metrics::global().get("kernel.dense_switch")
            {
                dense_cols_total += v;
            }
            println!(
                "  tau={tau:.0e}: sparse {} hybrid {} (rank {}, converged {})",
                fmt_s(sparse_s),
                fmt_s(hybrid_s),
                hybrid_res.rank,
                hybrid_res.converged
            );
            entries.push(entry(&a, &label, tau, sparse_s, &sparse_res, "ilut_crtp"));
            entries.push(entry(&a, &label, tau, hybrid_s, &hybrid_res, "ilut_crtp_hybrid"));
            sparse_total += sparse_s;
            hybrid_total += hybrid_s;
        }
        (sparse_total, hybrid_total, dense_cols_total)
    };

    // Gate on the best of up to [`HYBRID_PASSES`] full measurement
    // passes; the common (uncontended) case clears on the first pass
    // and pays nothing extra.
    let mut best: Option<(f64, f64, f64, Vec<BenchEntry>)> = None;
    for pass in 0..HYBRID_PASSES {
        let mut pass_entries = Vec::new();
        let (s, h, d) = sweep(&mut pass_entries);
        let r = h / s.max(1e-12);
        if best.as_ref().is_none_or(|(bs, bh, _, _)| r < bh / bs.max(1e-12)) {
            best = Some((s, h, d, pass_entries));
        }
        if r <= HYBRID_MAX_RATIO {
            break;
        }
        if pass + 1 < HYBRID_PASSES {
            println!("  ratio {r:.3} above {HYBRID_MAX_RATIO} — re-measuring");
        }
    }
    let (sparse_total, hybrid_total, dense_cols_total, best_entries) =
        best.expect("HYBRID_PASSES >= 1");
    entries.extend(best_entries);

    let ratio = hybrid_total / sparse_total.max(1e-12);
    reg.set_gauge("kernel.ilut_sparse_s", sparse_total);
    reg.set_gauge("kernel.ilut_hybrid_s", hybrid_total);
    reg.set_gauge("kernel.ilut_hybrid_ratio", ratio);
    reg.set_gauge("kernel.dense_switch_cols", dense_cols_total);
    println!(
        "ilut sweep: sparse {} hybrid {} ratio {ratio:.3} (gate <= {HYBRID_MAX_RATIO}), \
         {dense_cols_total} dense-switched columns",
        fmt_s(sparse_total),
        fmt_s(hybrid_total)
    );
    if dense_cols_total <= 0.0 {
        eprintln!("FAIL: hybrid run never engaged the dense switch — preset not fill-heavy");
        return false;
    }
    if ratio > HYBRID_MAX_RATIO {
        eprintln!("FAIL: hybrid ILUT sweep ratio {ratio:.3} above {HYBRID_MAX_RATIO}");
        return false;
    }
    true
}

/// Gate 3: the overlapped re-shard hides >= [`OVERLAP_MIN_HIDDEN`] of
/// the wire wait the eager sharded driver pays at [`OVERLAP_NP`].
///
/// Both quantities come from [`lra_comm::CommStats`] of the same run
/// pair: the eager oracle's `alltoallv_wait_ns` is the time ranks sit
/// blocked draining the re-shard exchange, and the overlapped driver's
/// `overlap_wait_ns` is what is left of that wait once the factor
/// concat runs inside the post→complete window.
///
/// Each run's wait is taken as the **minimum across ranks**, not the
/// sum. Per-rank waits are dominated by arrival skew — ranks that get
/// to the exchange early sit blocked on the straggler — and skew waits
/// overlap each other in wall-clock terms: the last-arriving rank
/// never pays them, so they never land on the run's critical path, and
/// no amount of overlap (or core count) can remove them. What every
/// rank pays, skew or no skew, is the irreducible drain cost of the
/// exchange itself, and the min across ranks isolates exactly that.
/// That is the re-shard wall the cost model charges per panel and the
/// quantity the post→complete window hides; it is also the only
/// formulation that is honest on a loaded or single-core runner, where
/// compute cannot reduce skew waits but deferring the drain behind the
/// concat still empties the channels before `complete` looks at them.
fn overlap_gate(cfg: &BenchConfig, reg: &MetricsRegistry) -> bool {
    // Same fill-heavy family as the hybrid gate: fill keeps the
    // re-shard payloads (and therefore the eager wire wait) large
    // enough to measure against timer resolution.
    let dim_blocks = if cfg.quick { 36 } else { 56 } * cfg.scale.max(1);
    let a = lra_matgen::with_decay(&lra_matgen::fluid_block(dim_blocks, 10, 37), 1e-7, 35);
    let opts = IlutOpts::new(BLOCK_K, 1e-2, 4);
    println!(
        "overlap np={OVERLAP_NP} — fluid{dim_blocks}x10 ({}x{}, {} nnz), k={BLOCK_K}",
        a.rows(),
        a.cols(),
        a.nnz()
    );

    let mut eager_wait = 0u64;
    let mut overlap_wait = 0u64;
    let mut posted_total = 0u64;
    for _ in 0..OVERLAP_REPS {
        let report = lra_comm::run_with(OVERLAP_NP, &RunConfig::default(), |ctx| {
            ilut_crtp_spmd_eager(ctx, &a, &opts)
        });
        eager_wait += report
            .stats
            .iter()
            .map(|s| s.alltoallv_wait_ns)
            .min()
            .unwrap_or(0);
        report.unwrap_all();

        let report = lra_comm::run_with(OVERLAP_NP, &RunConfig::default(), |ctx| {
            ilut_crtp_spmd(ctx, &a, &opts)
        });
        overlap_wait += report
            .stats
            .iter()
            .map(|s| s.overlap_wait_ns)
            .min()
            .unwrap_or(0);
        posted_total += report.stats.iter().map(|s| s.overlap_posted).sum::<u64>();
        report.unwrap_all();
    }
    let hidden = 1.0 - overlap_wait as f64 / (eager_wait as f64).max(1.0);
    reg.set_gauge("kernel.overlap_np", OVERLAP_NP as f64);
    reg.set_gauge("kernel.overlap_eager_wait_s", eager_wait as f64 / 1e9);
    reg.set_gauge("kernel.overlap_wait_s", overlap_wait as f64 / 1e9);
    reg.set_gauge("kernel.overlap_hidden_ratio", hidden);
    println!(
        "overlap np={OVERLAP_NP}: eager wait {} overlapped wait {} hidden {:.1}% \
         (gate >= {:.0}%, skew-free min-rank waits over {OVERLAP_REPS} paired reps)",
        fmt_s(eager_wait as f64 / 1e9),
        fmt_s(overlap_wait as f64 / 1e9),
        100.0 * hidden,
        100.0 * OVERLAP_MIN_HIDDEN
    );
    if posted_total == 0 {
        eprintln!("FAIL: overlapped driver never posted a re-shard — pipeline not engaged");
        return false;
    }
    if hidden < OVERLAP_MIN_HIDDEN {
        eprintln!(
            "FAIL: overlap hides {:.1}% of the eager re-shard wait, below {:.0}%",
            100.0 * hidden,
            100.0 * OVERLAP_MIN_HIDDEN
        );
        return false;
    }
    true
}

/// Interleaved best-of-`reps` for two variants of the same
/// (deterministic) computation: alternating the measurements keeps
/// slow drift from loading one side of the ratio.
fn best_of_pair(
    reps: usize,
    mut f: impl FnMut() -> LuCrtpResult,
    mut g: impl FnMut() -> LuCrtpResult,
) -> (f64, f64, LuCrtpResult, LuCrtpResult) {
    let (mut fres, mut fbest) = timed(&mut f);
    let (mut gres, mut gbest) = timed(&mut g);
    for _ in 1..reps {
        let (r, s) = timed(&mut f);
        if s < fbest {
            fbest = s;
            fres = r;
        }
        let (r, s) = timed(&mut g);
        if s < gbest {
            gbest = s;
            gres = r;
        }
    }
    (fbest, gbest, fres, gres)
}

fn entry(
    a: &CscMatrix,
    label: &str,
    tau: f64,
    wall: f64,
    res: &LuCrtpResult,
    algorithm: &str,
) -> BenchEntry {
    let true_rel = res.exact_error(a, Parallelism::SEQ) / res.a_norm_f;
    BenchEntry {
        algorithm: algorithm.to_string(),
        matrix: label.to_string(),
        rows: a.rows(),
        cols: a.cols(),
        nnz: a.nnz(),
        tau,
        k: BLOCK_K,
        np: 1,
        wall_s: wall,
        kernels: res
            .timers
            .report_with_other(wall)
            .into_iter()
            .map(|(kernel, seconds)| KernelTime {
                kernel: kernel.to_string(),
                seconds,
            })
            .collect(),
        rank: res.rank,
        iterations: res.iterations,
        converged: res.converged,
        est_rel_err: res.indicator / res.a_norm_f,
        true_rel_err: true_rel,
    }
}

/// `--validate PATH`: parse + structurally validate an existing report.
fn validate_file(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|err| fail(&format!("cannot read {path}: {err}")));
    let report = BenchReport::from_json_str(&text)
        .unwrap_or_else(|err| fail(&format!("{path}: parse error: {err}")));
    report
        .validate()
        .unwrap_or_else(|err| fail(&format!("{path}: invalid report: {err}")));
    println!("{path}: valid kernel report ({} entries)", report.entries.len());
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE} [--out PATH] [--validate PATH]");
    std::process::exit(2);
}
