//! Table II: runtime per correct digit.
//!
//! For each test matrix and tolerance, reports: RandUBV iterations;
//! RandQB_EI iterations and runtime for p in {0, 1, 2}; LU_CRTP
//! iterations and runtime; ILUT_CRTP runtime, the nnz ratio
//! `nnz(LU factors) / nnz(ILUT factors)` and the threshold `mu` chosen
//! by eq. 24 — the same columns as the paper's Table II.
//!
//! ```sh
//! cargo run -p lra-bench --release --bin table2 [-- --quick --large --np N]
//! ```

use lra_bench::{fmt_s, timed, BenchConfig};
use lra_core::{
    ilut_crtp, lu_crtp, rand_qb_ei, rand_ubv, IlutOpts, LuCrtpOpts, QbOpts, UbvOpts,
};

fn main() {
    let cfg = BenchConfig::from_args();
    let par = cfg.par();
    let np = cfg.max_np;

    // Per-matrix (k, tolerance grid), mirroring the paper's per-matrix
    // best (k, np) presets scaled to this machine.
    let mut plans: Vec<(lra_matgen::TestMatrix, usize, Vec<f64>)> = vec![
        (lra_matgen::m1(cfg.scale), 32, vec![1e-1, 1e-2, 1e-3]),
        (lra_matgen::m2(cfg.scale), 32, vec![1e-1, 1e-2, 1e-3, 1e-4]),
        (lra_matgen::m3(cfg.scale), 32, vec![1e-1, 1e-2, 1e-3]),
        (lra_matgen::m4(cfg.scale), 64, vec![1e-1, 1e-2, 1e-3]),
        (lra_matgen::m5(cfg.scale), 64, vec![1e-1, 1e-2, 1e-3, 1e-4]),
    ];
    if cfg.large {
        plans.push((lra_matgen::m6(cfg.scale), 64, vec![1e-3, 1e-4]));
    }
    if cfg.quick {
        plans.truncate(2);
        for p in &mut plans {
            p.2.truncate(2);
        }
    }

    println!("TABLE II — runtime per correct digit (np = {np})");
    println!(
        "{:<5} {:>6} | {:>7} | {:>5} {:>8} | {:>5} {:>8} | {:>5} {:>8} | {:>4} | {:>5} {:>8} | {:>8} {:>8} {:>9}",
        "mat", "tau", "its_ubv", "its_0", "time_0", "its_1", "time_1", "its_2", "time_2", "k",
        "its", "time_lu", "time_il", "rat_nnz", "mu"
    );
    lra_bench::rule(130);

    for (tm, k, taus) in &plans {
        let a = &tm.a;
        for &tau in taus {
            // RandUBV (sequential in the paper; iterations only).
            let ubv = rand_ubv(a, &{
                let mut o = UbvOpts::new(*k, tau);
                o.par = par;
                o
            });
            let its_ubv = if ubv.converged {
                ubv.iterations.to_string()
            } else {
                "-".to_string()
            };

            // RandQB_EI for p in {0, 1, 2}.
            let mut qb_cols: Vec<(String, String)> = Vec::new();
            for p in 0..=2usize {
                let (res, t) = timed(|| {
                    rand_qb_ei(a, &QbOpts::new(*k, tau).with_power(p).with_par(par))
                });
                match res {
                    Ok(r) if r.converged => {
                        qb_cols.push((r.iterations.to_string(), fmt_s(t)));
                    }
                    _ => qb_cols.push(("-".into(), "-".into())),
                }
            }

            // LU_CRTP.
            let (lu, t_lu) = timed(|| lu_crtp(a, &LuCrtpOpts::new(*k, tau).with_par(par)));
            let (its_lu, time_lu) = if lu.converged {
                (lu.iterations.to_string(), fmt_s(t_lu))
            } else {
                ("-".into(), "-".into())
            };

            // ILUT_CRTP with u = LU_CRTP's iteration count (the paper's
            // protocol) and the same (k, np).
            let (time_il, rat, mu) = if lu.converged {
                let (il, t_il) = timed(|| {
                    ilut_crtp(a, &{
                        let mut o = IlutOpts::new(*k, tau, lu.iterations.max(1));
                        o.base.par = par;
                        o
                    })
                });
                if il.converged {
                    let ratio = lu.factor_nnz() as f64 / il.factor_nnz().max(1) as f64;
                    let mu = il.threshold.as_ref().map(|t| t.mu).unwrap_or(0.0);
                    (fmt_s(t_il), format!("{ratio:.1}"), format!("{mu:.1e}"))
                } else {
                    ("-".into(), "-".into(), "-".into())
                }
            } else {
                ("-".into(), "-".into(), "-".into())
            };

            println!(
                "{:<5} {:>6.0e} | {:>7} | {:>5} {:>8} | {:>5} {:>8} | {:>5} {:>8} | {:>4} | {:>5} {:>8} | {:>8} {:>8} {:>9}",
                tm.label,
                tau,
                its_ubv,
                qb_cols[0].0,
                qb_cols[0].1,
                qb_cols[1].0,
                qb_cols[1].1,
                qb_cols[2].0,
                qb_cols[2].1,
                k,
                its_lu,
                time_lu,
                time_il,
                rat,
                mu
            );
        }
        lra_bench::rule(130);
    }
}
