//! Shared figure drivers (used by the `fig2` and `fig3` binaries).

use crate::{fmt_s, timed, BenchConfig};
use lra_core::{ilut_crtp, lu_crtp, rand_qb_ei, IlutOpts, LuCrtpOpts, QbOpts};
use lra_dense::{min_rank_for_tolerance, singular_values};

/// Runtime vs. approximation quality for a set of matrices — the common
/// engine of Figs. 2 and 3. For each tolerance it reports the exact
/// minimum rank (TSVD, when `cfg.tsvd`), the approximated minimum rank
/// (from one tight RandQB_EI p=2 run, the paper's asterisk series), and
/// runtime/rank for RandQB_EI p∈{1,2}, LU_CRTP and ILUT_CRTP.
pub fn run_accuracy_vs_cost(
    matrices: Vec<(lra_matgen::TestMatrix, usize)>,
    taus: &[f64],
    cfg: &BenchConfig,
) {
    let par = cfg.par();
    for (tm, k) in matrices {
        let a = &tm.a;
        println!(
            "\n=== {} ({}x{}, nnz {}) k={k} ===",
            tm.label,
            a.rows(),
            a.cols(),
            a.nnz()
        );
        // Exact TSVD reference only where affordable (the paper also
        // skips it "due to the prohibitive computational cost" for M5).
        const TSVD_SIZE_CAP: usize = 6000;
        let sv = if cfg.tsvd && a.rows().max(a.cols()) <= TSVD_SIZE_CAP {
            println!("computing TSVD reference (dense SVD)...");
            Some(singular_values(&a.to_dense()))
        } else {
            if cfg.tsvd {
                println!(
                    "(skipping exact TSVD: size {} above cap {TSVD_SIZE_CAP}; using the \
                     RandQB_EI-approximated minimum rank, as the paper does for M5)",
                    a.rows().max(a.cols())
                );
            }
            None
        };
        let tight_tau = taus
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(lra_core::QB_INDICATOR_FLOOR * 1.01);
        let tight = rand_qb_ei(a, &QbOpts::new(k, tight_tau).with_power(2).with_par(par))
            .expect("tau above floor");
        let approx_min_rank = |tau: f64| -> Option<usize> {
            tight
                .indicator_history
                .iter()
                .position(|&e| e < tau * tight.a_norm_f)
                .map(|i| (i + 1) * k)
        };

        println!(
            "{:>8} | {:>8} {:>9} | {:>15} {:>15} {:>15} {:>15}",
            "tau", "minrank", "~minrank", "QB p=1", "QB p=2", "LU_CRTP", "ILUT_CRTP"
        );
        for &tau in taus {
            let min_rank = sv
                .as_ref()
                .map(|s| min_rank_for_tolerance(s, tau).to_string())
                .unwrap_or_else(|| "-".into());
            let amr = approx_min_rank(tau)
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into());
            let (qb1, t_qb1) =
                timed(|| rand_qb_ei(a, &QbOpts::new(k, tau).with_power(1).with_par(par)));
            let (qb2, t_qb2) =
                timed(|| rand_qb_ei(a, &QbOpts::new(k, tau).with_power(2).with_par(par)));
            let (lu, t_lu) = timed(|| lu_crtp(a, &LuCrtpOpts::new(k, tau).with_par(par)));
            let (il, t_il) = timed(|| {
                ilut_crtp(a, &{
                    let mut o = IlutOpts::new(k, tau, lu.iterations.max(1));
                    o.base.par = par;
                    o
                })
            });
            let cell = |ok: bool, t: f64, rank: usize| {
                if ok {
                    format!("{:>7}s r={rank:<5}", fmt_s(t))
                } else {
                    format!("{:>14}", "-")
                }
            };
            println!(
                "{:>8.0e} | {:>8} {:>9} | {} {} {} {}",
                tau,
                min_rank,
                amr,
                cell(
                    qb1.as_ref().map(|r| r.converged).unwrap_or(false),
                    t_qb1,
                    qb1.as_ref().map(|r| r.rank).unwrap_or(0)
                ),
                cell(
                    qb2.as_ref().map(|r| r.converged).unwrap_or(false),
                    t_qb2,
                    qb2.as_ref().map(|r| r.rank).unwrap_or(0)
                ),
                cell(lu.converged, t_lu, lu.rank),
                cell(il.converged, t_il, il.rank),
            );
        }
    }
}
