//! Shared helpers for the benchmark binaries that regenerate the
//! paper's tables and figures (see DESIGN.md for the per-experiment
//! index and EXPERIMENTS.md for recorded outputs).

use lra_par::Parallelism;
use std::time::Instant;

pub mod figures;

/// Command-line configuration shared by all benchmark binaries.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Linear size multiplier for the preset matrices.
    pub scale: usize,
    /// Include the large M6' experiment.
    pub large: bool,
    /// Reduced tolerance grid / iteration counts for smoke runs.
    pub quick: bool,
    /// Worker cap (defaults to all hardware threads).
    pub max_np: usize,
    /// Compute the exact TSVD reference where requested (slow).
    pub tsvd: bool,
}

/// One-line usage string shared by every benchmark binary.
pub const USAGE: &str = "usage: <bench> [--scale N] [--np N] [--large] [--quick] [--tsvd]";

impl BenchConfig {
    /// Defaults: scale 1, all hardware threads, nothing optional.
    pub fn defaults() -> Self {
        BenchConfig {
            scale: 1,
            large: false,
            quick: false,
            max_np: lra_par::available_parallelism(),
            tsvd: false,
        }
    }

    /// Parse flags (`--scale N`, `--np N`, `--large`, `--quick`,
    /// `--tsvd`) from an argument slice *excluding* the program name.
    /// Unrecognized flags, missing values and unparsable numbers are
    /// errors, not panics.
    pub fn parse_args(args: &[String]) -> Result<Self, String> {
        let mut cfg = Self::defaults();
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<usize, String> {
            *i += 1;
            let raw = args
                .get(*i)
                .ok_or_else(|| format!("{flag} requires a value"))?;
            raw.parse()
                .map_err(|_| format!("{flag} expects a positive integer, got {raw:?}"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => cfg.scale = value(&mut i, "--scale")?,
                "--np" => cfg.max_np = value(&mut i, "--np")?,
                "--large" => cfg.large = true,
                "--quick" => cfg.quick = true,
                "--tsvd" => cfg.tsvd = true,
                other => return Err(format!("unknown flag {other:?}")),
            }
            i += 1;
        }
        Ok(cfg)
    }

    /// Parse from `std::env::args`. On any parse error, prints the
    /// error and [`USAGE`] to stderr and exits with status 2 (it used
    /// to panic on unrecognized arguments, burying the usage line in a
    /// backtrace).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse_args(&args).unwrap_or_else(|err| {
            eprintln!("error: {err}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }

    /// Full parallelism under the configured cap.
    pub fn par(&self) -> Parallelism {
        Parallelism::new(self.max_np)
    }

    /// Doubling `np` sweep `1, 2, 4, ..., max_np`.
    pub fn np_sweep(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut np = 1;
        while np <= self.max_np {
            v.push(np);
            np *= 2;
        }
        if *v.last().unwrap() != self.max_np {
            v.push(self.max_np);
        }
        v
    }
}

/// Wall-clock a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

/// Numerical rank of a matrix from its singular values:
/// `#{ i : s_i > max(m,n) * eps * s_0 }`.
pub fn numerical_rank(s: &[f64], m: usize, n: usize) -> usize {
    if s.is_empty() || s[0] == 0.0 {
        return 0;
    }
    let thresh = m.max(n) as f64 * f64::EPSILON * s[0];
    s.iter().take_while(|&&x| x > thresh).count()
}

/// Print a horizontal rule sized to a header line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format seconds compactly.
pub fn fmt_s(s: f64) -> String {
    if s < 0.001 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 10.0 {
        format!("{s:.3}")
    } else {
        format!("{s:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numerical_rank_counts_above_threshold() {
        let s = [1.0, 0.5, 1e-20];
        assert_eq!(numerical_rank(&s, 10, 10), 2);
        assert_eq!(numerical_rank(&[], 3, 3), 0);
        assert_eq!(numerical_rank(&[0.0], 3, 3), 0);
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_accepts_known_flags() {
        let cfg = BenchConfig::parse_args(&sv(&["--scale", "3", "--quick", "--np", "7"])).unwrap();
        assert_eq!(cfg.scale, 3);
        assert_eq!(cfg.max_np, 7);
        assert!(cfg.quick);
        assert!(!cfg.large);
        assert!(!cfg.tsvd);
    }

    #[test]
    fn parse_args_rejects_unknown_flag() {
        let err = BenchConfig::parse_args(&sv(&["--bogus"])).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn parse_args_rejects_missing_or_bad_value() {
        let err = BenchConfig::parse_args(&sv(&["--scale"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        let err = BenchConfig::parse_args(&sv(&["--np", "many"])).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
    }

    #[test]
    fn np_sweep_doubles() {
        let cfg = BenchConfig {
            scale: 1,
            large: false,
            quick: false,
            max_np: 6,
            tsvd: false,
        };
        assert_eq!(cfg.np_sweep(), vec![1, 2, 4, 6]);
    }
}
