//! End-to-end CLI behavior of the bench binaries: bad arguments must
//! produce a usage message and a non-zero exit, not a panic backtrace.

use std::process::Command;

#[test]
fn unknown_flag_prints_usage_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_suite"))
        .arg("--bogus")
        .output()
        .expect("spawn bench_suite");
    assert_eq!(out.status.code(), Some(2), "status: {:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--bogus"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn missing_flag_value_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_suite"))
        .args(["--scale"])
        .output()
        .expect("spawn bench_suite");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("requires a value"), "stderr: {stderr}");
}

#[test]
fn validate_rejects_malformed_report() {
    let dir = std::env::temp_dir().join("lra_bench_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    std::fs::write(&path, "{\"schema_version\":1}").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench_suite"))
        .args(["--validate", path.to_str().unwrap()])
        .output()
        .expect("spawn bench_suite");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid report"), "stderr: {stderr}");
}
