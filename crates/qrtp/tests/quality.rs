//! Rank-revealing quality tests for tournament pivoting across many
//! seeds: the selected columns' smallest singular value must stay
//! within a bounded factor of the best achievable (the `q(m, n, k)`
//! polynomial bound of Grigori et al., eq. 16 of the paper, is loose;
//! in practice the ratio is modest, which is what these tests pin).

use lra_dense::{matmul, singular_values, DenseMatrix};
use lra_par::Parallelism;
use lra_qrtp::{tournament_columns, TournamentTree};
use lra_sparse::CscMatrix;

fn rand_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    DenseMatrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

/// sigma_min of the selected k columns, relative to the k-th singular
/// value of the whole matrix (the unbeatable reference).
fn selection_quality(a: &DenseMatrix, selected: &[usize]) -> f64 {
    let k = selected.len();
    let picked = a.select_columns(selected);
    let sv_sel = singular_values(&picked);
    let sv_all = singular_values(a);
    sv_sel[k - 1] / sv_all[k - 1].max(f64::MIN_POSITIVE)
}

#[test]
fn quality_bounded_over_many_seeds() {
    let k = 6;
    let mut worst = f64::INFINITY;
    for seed in 0..20u64 {
        // Low-rank-plus-noise: hard case for column selection.
        let base = rand_dense(80, k, seed * 3 + 1);
        let mix = rand_dense(k, 58, seed * 3 + 2);
        let mut a = matmul(&base, &mix, Parallelism::SEQ);
        let noise = rand_dense(80, 58, seed * 3 + 3);
        a.axpy(0.01, &noise);
        let sp = CscMatrix::from_dense(&a);
        for tree in [TournamentTree::Binary, TournamentTree::Flat] {
            let sel = tournament_columns(&sp, None, k, tree, Parallelism::SEQ);
            let q = selection_quality(&a, &sel.selected);
            worst = worst.min(q);
            assert!(
                q > 0.02,
                "seed {seed} {tree:?}: quality {q} collapsed"
            );
        }
    }
    // Across all seeds the typical quality is far better than the
    // worst-case exponential bound suggests.
    assert!(worst > 0.02, "worst quality {worst}");
}

#[test]
fn graded_spectrum_selection() {
    // Columns scaled by a geometric sequence: the tournament must pick
    // (mostly) the heavy columns.
    for seed in [1u64, 5, 9] {
        let n = 64;
        let mut a = rand_dense(90, n, seed);
        for j in 0..n {
            let w = 0.8f64.powi(j as i32);
            for x in a.col_mut(j) {
                *x *= w;
            }
        }
        let sp = CscMatrix::from_dense(&a);
        let k = 8;
        let sel = tournament_columns(&sp, None, k, TournamentTree::Binary, Parallelism::SEQ);
        // All winners among the heaviest 3k columns.
        assert!(
            sel.selected.iter().all(|&c| c < 3 * k),
            "picked light columns: {:?}",
            sel.selected
        );
    }
}

#[test]
fn binary_and_flat_trees_similar_quality() {
    let k = 5;
    for seed in 0..10u64 {
        let a = rand_dense(70, 40, 100 + seed);
        let sp = CscMatrix::from_dense(&a);
        let qb = selection_quality(
            &a,
            &tournament_columns(&sp, None, k, TournamentTree::Binary, Parallelism::SEQ).selected,
        );
        let qf = selection_quality(
            &a,
            &tournament_columns(&sp, None, k, TournamentTree::Flat, Parallelism::SEQ).selected,
        );
        assert!(
            qb > 0.1 && qf > 0.1,
            "seed {seed}: binary {qb}, flat {qf}"
        );
        assert!(
            (qb / qf).max(qf / qb) < 10.0,
            "seed {seed}: trees disagree wildly ({qb} vs {qf})"
        );
    }
}

#[test]
fn r_diag_tracks_singular_values_loosely() {
    // The rank-revealing property: |R_ii| of the winners approximates
    // sigma_i of A within modest factors (cf. eq. 16 / Table of
    // Grigori et al.).
    let a = rand_dense(100, 60, 42);
    let sp = CscMatrix::from_dense(&a);
    let k = 10;
    let sel = tournament_columns(&sp, None, k, TournamentTree::Binary, Parallelism::SEQ);
    let sv = singular_values(&a);
    for (i, &rd) in sel.r_diag.iter().enumerate() {
        let ratio = rd.abs() / sv[i];
        assert!(
            ratio > 0.05 && ratio < 2.0,
            "R({i},{i}) = {rd} vs sigma_{i} = {} (ratio {ratio})",
            sv[i]
        );
    }
}
