//! Column sources: the abstraction tournament pivoting runs over.
//!
//! The column tournament of LU_CRTP selects from the columns of the
//! sparse Schur complement `A^(i)`; the row tournament selects from the
//! columns of the dense `Q_k^T`. Both are "a bag of columns you can
//! gather into dense panels", captured by [`ColumnSource`].

use lra_dense::DenseMatrix;
use lra_sparse::CscMatrix;

/// A matrix whose columns can be gathered into dense panels chunk by
/// chunk (rows `lo..hi`), without materializing the whole panel.
pub trait ColumnSource: Sync {
    /// Number of rows.
    fn rows(&self) -> usize;
    /// Number of columns.
    fn cols(&self) -> usize;
    /// Gather rows `row_range` of the given columns into a dense block
    /// of shape `row_range.len() x idx.len()`.
    fn gather(&self, idx: &[usize], row_range: std::ops::Range<usize>) -> DenseMatrix;
    /// Total number of stored entries in the given columns (used to
    /// size row chunks; dense sources return `rows * idx.len()`).
    fn gather_nnz(&self, idx: &[usize]) -> usize;
}

impl ColumnSource for CscMatrix {
    fn rows(&self) -> usize {
        CscMatrix::rows(self)
    }
    fn cols(&self) -> usize {
        CscMatrix::cols(self)
    }
    fn gather(&self, idx: &[usize], row_range: std::ops::Range<usize>) -> DenseMatrix {
        self.gather_columns_rows_dense(idx, row_range)
    }
    fn gather_nnz(&self, idx: &[usize]) -> usize {
        idx.iter().map(|&j| self.col_nnz(j)).sum()
    }
}

impl ColumnSource for DenseMatrix {
    fn rows(&self) -> usize {
        DenseMatrix::rows(self)
    }
    fn cols(&self) -> usize {
        DenseMatrix::cols(self)
    }
    fn gather(&self, idx: &[usize], row_range: std::ops::Range<usize>) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(row_range.len(), idx.len());
        for (dst, &j) in idx.iter().enumerate() {
            let src = &self.col(j)[row_range.clone()];
            out.col_mut(dst).copy_from_slice(src);
        }
        out
    }
    fn gather_nnz(&self, idx: &[usize]) -> usize {
        self.rows() * idx.len()
    }
}
