#![allow(clippy::needless_range_loop)] // indexing parallel arrays is clearest in these kernels
//! QR with tournament pivoting (QR_TP) — the rank-revealing engine of
//! LU_CRTP / ILUT_CRTP.
//!
//! Two drivers are provided over one node kernel (QRCP of a panel `R`
//! factor computed by memory-bounded incremental QR):
//! - [`tournament_columns`]: shared-memory, leaves processed with
//!   `lra-par` workers (flat or binary tree);
//! - [`tournament_columns_spmd`]: rank-distributed over the `lra-comm`
//!   SPMD runtime, mirroring the paper's MPI reduction tree with its
//!   communication-free local stage and `log2(P)` global stage;
//! - [`tournament_columns_spmd_sharded`]: like the SPMD driver, but
//!   over a *distributed* matrix — each rank holds only its own
//!   block-column `ColSlice`, and winner columns travel with their ids
//!   as compact panels (bitwise-identical selections).

mod source;
mod spmd;
mod tournament;

pub use lra_dense::Numerics;
pub use source::ColumnSource;
pub use spmd::{tournament_columns_spmd, tournament_columns_spmd_sharded};
pub use tournament::{
    panel_r, panel_r_gram, panel_r_mode, tournament_columns, tournament_columns_mode,
    tournament_rows_dense, tournament_rows_dense_mode, ColumnSelection, TournamentTree,
};
