//! Rank-distributed tournament pivoting over the `lra-comm` SPMD
//! runtime — the direct port of the paper's MPI reduction tree
//! (Section V).
//!
//! Each rank owns a contiguous block of candidate columns and reduces
//! them to `k` winners with *no communication* (the local stage); the
//! winners then compete pairwise over `log2(P)` message rounds (the
//! global stage). Only column indices travel between ranks — the matrix
//! itself is shared read-only, matching the paper's observation that
//! the selected columns are gathered where needed.

use crate::source::ColumnSource;
use crate::tournament::{panel_r, tournament_columns, ColumnSelection, TournamentTree};
use lra_comm::Ctx;
use lra_dense::qrcp;
use lra_par::{split_ranges, Parallelism};
use lra_sparse::{gather_csc, ColSlice, CscMatrix};

/// Tag for tournament winner exchanges.
const TAG_WINNERS: u64 = 0x7101;
/// Tag for sharded winner exchanges (ids + compact columns).
const TAG_SHARD_WINNERS: u64 = 0x7102;

/// SPMD column tournament: every rank calls this with the same
/// arguments; every rank returns the same [`ColumnSelection`].
pub fn tournament_columns_spmd<S: ColumnSource + ?Sized>(
    ctx: &Ctx,
    src: &S,
    candidates: Option<&[usize]>,
    k: usize,
) -> ColumnSelection {
    let all: Vec<usize>;
    let cand: &[usize] = match candidates {
        Some(c) => c,
        None => {
            all = (0..src.cols()).collect();
            &all
        }
    };
    let size = ctx.size();
    let rank = ctx.rank();
    let ranges = split_ranges(cand.len(), size);
    // Local reduction: communication-free.
    let mut winners: Vec<usize> = lra_obs::trace::span("qrtp.local_stage", || {
        if rank < ranges.len() && !ranges[rank].is_empty() {
            let own = &cand[ranges[rank].clone()];
            if own.len() <= k {
                own.to_vec()
            } else {
                tournament_columns(src, Some(own), k, TournamentTree::Binary, Parallelism::SEQ)
                    .selected
            }
        } else {
            Vec::new()
        }
    });
    // Global binomial reduction: log2(P) rounds of pairwise merges.
    // (Static span name — rounds are separated by time and parentage in
    // the trace; a per-round `format!` would allocate with tracing off.)
    let mut mask = 1usize;
    while mask < size {
        let advance = lra_obs::trace::span("qrtp.reduce_round", || {
            if rank & mask == 0 {
                let peer = rank | mask;
                if peer < size {
                    let theirs: Vec<usize> = ctx.recv(peer, TAG_WINNERS);
                    if !theirs.is_empty() {
                        let mut merged = winners.clone();
                        merged.extend_from_slice(&theirs);
                        winners = node_select(src, &merged, k).0;
                    }
                }
                true
            } else {
                let parent = rank & !mask;
                ctx.send(parent, TAG_WINNERS, winners.clone());
                winners.clear();
                false
            }
        });
        if !advance {
            break;
        }
        mask <<= 1;
    }
    // Root ranks the final winners (also producing r_diag) and
    // broadcasts the result.
    let (selected, r_diag) = lra_obs::trace::span("qrtp.final_select", || {
        let result = if rank == 0 {
            let (selected, r_diag) = node_select(src, &winners, k);
            (selected, r_diag)
        } else {
            (Vec::new(), Vec::new())
        };
        ctx.broadcast(0, result)
    });
    ColumnSelection { selected, r_diag }
}

/// One tournament node: rank candidate columns via QRCP of the panel R.
fn node_select<S: ColumnSource + ?Sized>(
    src: &S,
    idx: &[usize],
    k: usize,
) -> (Vec<usize>, Vec<f64>) {
    let r = crate::tournament::panel_r(src, idx, Parallelism::SEQ);
    let f = qrcp(&r, k);
    let sel: Vec<usize> = f.perm[..f.steps.min(k)].iter().map(|&p| idx[p]).collect();
    (sel, f.r_diag())
}

/// One tournament node over a compact candidate matrix: ranks all of
/// its columns, returning winning *positions* (so the caller can slice
/// both its id list and the matrix) plus the QRCP `R` diagonal.
///
/// Bitwise-equivalent to [`node_select`] on the full matrix with the
/// same candidate columns: `panel_r`'s chunking depends only on the row
/// dimension and candidate count, and its gathers are positional, so a
/// compact copy of the candidates yields the same dense panels.
fn node_select_positions(cols: &CscMatrix, k: usize) -> (Vec<usize>, Vec<f64>) {
    let idx: Vec<usize> = (0..cols.cols()).collect();
    let r = panel_r(cols, &idx, Parallelism::SEQ);
    let f = qrcp(&r, k);
    (f.perm[..f.steps.min(k)].to_vec(), f.r_diag())
}

/// Sharded SPMD column tournament: like [`tournament_columns_spmd`],
/// but the matrix is *distributed* — each rank holds only its own
/// block-column [`ColSlice`] of the virtual matrix and winner columns
/// travel with their ids as compact CSC panels, so no rank ever
/// materializes more than `O(k)` foreign columns.
///
/// Every rank returns the same `(selection, panel)`: `selection` holds
/// *global* column ids of the virtual matrix, and `panel` is the
/// compact copy of the selected columns (full row dimension, columns
/// in pivot order) the caller feeds to TSQR and the block split.
///
/// Produces bitwise-identical selections to running
/// [`tournament_columns_spmd`] on the replicated matrix: the ownership
/// partition here *is* the `split_ranges` partition the replicated
/// local stage uses, and every node works on the same dense panels.
pub fn tournament_columns_spmd_sharded(
    ctx: &Ctx,
    shard: &ColSlice,
    k: usize,
) -> (ColumnSelection, CscMatrix) {
    let size = ctx.size();
    let rank = ctx.rank();
    let rows = shard.rows();
    // Local reduction: communication-free, over the owned shard only.
    let mut winners: Vec<usize> = lra_obs::trace::span("qrtp.local_stage", || {
        if shard.ncols_local() == 0 {
            Vec::new()
        } else if shard.ncols_local() <= k {
            shard.col_range().collect()
        } else {
            tournament_columns(
                shard.local(),
                None,
                k,
                TournamentTree::Binary,
                Parallelism::SEQ,
            )
            .selected
            .iter()
            .map(|&c| c + shard.offset())
            .collect()
        }
    });
    let mut cols: CscMatrix = if winners.is_empty() {
        CscMatrix::zeros(rows, 0)
    } else {
        shard.extract_columns(&winners)
    };
    // Global binomial reduction; winner columns ride along as compact
    // panels so receivers never touch forebearers' shards.
    let mut mask = 1usize;
    while mask < size {
        let advance = lra_obs::trace::span("qrtp.reduce_round", || {
            if rank & mask == 0 {
                let peer = rank | mask;
                if peer < size {
                    let (their_ids, their_cols): (Vec<usize>, CscMatrix) =
                        ctx.recv(peer, TAG_SHARD_WINNERS);
                    if !their_ids.is_empty() {
                        let mut merged = winners.clone();
                        merged.extend_from_slice(&their_ids);
                        let merged_cols = gather_csc(&[cols.clone(), their_cols]);
                        let (pos, _) = node_select_positions(&merged_cols, k);
                        winners = pos.iter().map(|&p| merged[p]).collect();
                        cols = merged_cols.select_columns(&pos);
                    }
                }
                true
            } else {
                let parent = rank & !mask;
                ctx.send(
                    parent,
                    TAG_SHARD_WINNERS,
                    (std::mem::take(&mut winners), std::mem::replace(&mut cols, CscMatrix::zeros(rows, 0))),
                );
                false
            }
        });
        if !advance {
            break;
        }
        mask <<= 1;
    }
    // Root ranks the final winners and broadcasts ids, r_diag, and the
    // selected panel together.
    let (selected, r_diag, panel) = lra_obs::trace::span("qrtp.final_select", || {
        let result = if rank == 0 {
            let (pos, r_diag) = node_select_positions(&cols, k);
            let selected: Vec<usize> = pos.iter().map(|&p| winners[p]).collect();
            let panel = cols.select_columns(&pos);
            (selected, r_diag, panel)
        } else {
            (Vec::new(), Vec::new(), CscMatrix::zeros(rows, 0))
        };
        ctx.broadcast(0, result)
    });
    (ColumnSelection { selected, r_diag }, panel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_dense::{matmul, singular_values, DenseMatrix};
    use lra_sparse::{CooMatrix, CscMatrix};

    fn rand_sparse(rows: usize, cols: usize, per_col: usize, seed: u64) -> CscMatrix {
        let mut state = seed.wrapping_mul(0x517CC1B727220A95) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let mut coo = CooMatrix::new(rows, cols);
        for j in 0..cols {
            for _ in 0..per_col {
                let r = (next() % rows as u64) as usize;
                let v = ((next() >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
                coo.push(r, j, v);
            }
        }
        coo.to_csc()
    }

    fn rand_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        DenseMatrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn all_ranks_agree() {
        let a = rand_sparse(100, 48, 4, 1);
        for np in [1usize, 2, 4, 7] {
            let results = lra_comm::run_infallible(np, |ctx| {
                tournament_columns_spmd(ctx, &a, None, 8).selected
            });
            for r in &results[1..] {
                assert_eq!(r, &results[0], "np={np}: ranks disagree");
            }
            assert_eq!(results[0].len(), 8);
            let mut s = results[0].clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 8);
        }
    }

    #[test]
    fn spmd_finds_independent_columns() {
        let base = rand_dense(60, 5, 2);
        let mix = rand_dense(5, 43, 3);
        let deps = matmul(&base, &mix, lra_par::Parallelism::SEQ);
        let full = base.hcat(&deps);
        let a = CscMatrix::from_dense(&full);
        let results = lra_comm::run_infallible(4, |ctx| {
            tournament_columns_spmd(ctx, &a, None, 5).selected
        });
        let picked = full.select_columns(&results[0]);
        let sv = singular_values(&picked);
        assert!(sv[4] > 1e-8, "picked dependent columns: {sv:?}");
    }

    #[test]
    fn more_ranks_than_candidates() {
        let a = rand_sparse(30, 5, 3, 4);
        let results = lra_comm::run_infallible(8, |ctx| {
            tournament_columns_spmd(ctx, &a, None, 3).selected
        });
        assert_eq!(results[0].len(), 3);
        for r in &results {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn sharded_matches_replicated_bitwise() {
        let a = rand_sparse(100, 48, 4, 1);
        for np in [1usize, 2, 4, 7] {
            for k in [3usize, 8] {
                let replicated = lra_comm::run_infallible(np, |ctx| {
                    let sel = tournament_columns_spmd(ctx, &a, None, k);
                    (sel.selected, sel.r_diag)
                });
                let sharded = lra_comm::run_infallible(np, |ctx| {
                    let ranges = split_ranges(a.cols(), ctx.size());
                    let range = lra_par::owned_range(&ranges, ctx.rank());
                    let shard = ColSlice::from_full(&a, range);
                    let (sel, panel) = tournament_columns_spmd_sharded(ctx, &shard, k);
                    (sel.selected, sel.r_diag, panel)
                });
                for (rank, (sel, rd, panel)) in sharded.iter().enumerate() {
                    let (rsel, rrd) = &replicated[rank];
                    assert_eq!(sel, rsel, "np={np} k={k} rank={rank}");
                    assert_eq!(rd.len(), rrd.len());
                    for (x, y) in rd.iter().zip(rrd) {
                        assert_eq!(x.to_bits(), y.to_bits(), "np={np} k={k}");
                    }
                    // The broadcast panel is an exact copy of the
                    // selected columns.
                    assert_eq!(*panel, a.select_columns(sel), "np={np} k={k}");
                }
            }
        }
    }

    #[test]
    fn sharded_handles_empty_high_ranks() {
        // More ranks than columns: high ranks own empty shards but must
        // still agree on the result.
        let a = rand_sparse(30, 5, 3, 4);
        let results = lra_comm::run_infallible(8, |ctx| {
            let ranges = split_ranges(a.cols(), ctx.size());
            let range = lra_par::owned_range(&ranges, ctx.rank());
            let shard = ColSlice::from_full(&a, range);
            tournament_columns_spmd_sharded(ctx, &shard, 3).0.selected
        });
        assert_eq!(results[0].len(), 3);
        for r in &results {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn r_diag_broadcast_everywhere() {
        let a = rand_sparse(64, 32, 4, 5);
        let results = lra_comm::run_infallible(3, |ctx| {
            tournament_columns_spmd(ctx, &a, None, 4).r_diag
        });
        assert!(!results[0].is_empty());
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }
}
