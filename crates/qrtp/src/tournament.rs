//! QR with tournament pivoting (QR_TP).
//!
//! Finds the `k` "most linearly independent" columns of a matrix with a
//! reduction tree (Section V of the paper, after Grigori/Cayrols/
//! Demmel). Each node ranks its `<= 2k` candidate columns by
//! column-pivoted QR of the panel's `R` factor — valid because QRCP
//! pivots depend only on column inner products, which `R` preserves —
//! and promotes the `k` winners. The `R` factor itself is computed by a
//! chunked, memory-bounded incremental QR over row blocks, which is the
//! sparse-panel substitute for SuiteSparseQR.
//!
//! Asymptotic cost matches the paper's `O(16 k^2 nnz(A))` for both flat
//! and binary trees.

use crate::source::ColumnSource;
use lra_dense::{qr, qrcp, DenseMatrix, Numerics};
use lra_par::{parallel_for, Parallelism};

/// Shape of the reduction tree (Section V; an ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TournamentTree {
    /// Pairwise merges, `log2(#blocks)` levels — the parallel default.
    Binary,
    /// Sequential accumulation of one block at a time.
    Flat,
}

/// Result of a column tournament.
#[derive(Debug, Clone)]
pub struct ColumnSelection {
    /// The `k` winning column indices (into the source), in pivot order
    /// (most independent first).
    pub selected: Vec<usize>,
    /// Diagonal of `R` from the final root QRCP over the winners;
    /// `|r_diag[0]|` is the `|R^(1)(1,1)|` estimate of `||A||_2` used by
    /// ILUT_CRTP (eq. 23-24).
    pub r_diag: Vec<f64>,
}

impl ColumnSelection {
    /// Serialize for checkpointing: the tournament's outcome is part of
    /// the factorization loop state a supervisor snapshots at collective
    /// boundaries (`lra-recover`). Floats print with shortest
    /// round-trip formatting, so a serialize → parse cycle is bitwise
    /// exact.
    pub fn to_json(&self) -> lra_obs::Json {
        use lra_obs::Json;
        Json::Obj(vec![
            (
                "selected".to_string(),
                Json::Arr(self.selected.iter().map(|&c| Json::Num(c as f64)).collect()),
            ),
            (
                "r_diag".to_string(),
                Json::Arr(self.r_diag.iter().map(|&v| Json::Num(v)).collect()),
            ),
        ])
    }

    /// Rebuild from [`ColumnSelection::to_json`] output.
    pub fn from_json(j: &lra_obs::Json) -> Result<Self, String> {
        let selected = j
            .get("selected")
            .and_then(lra_obs::Json::as_arr)
            .ok_or("ColumnSelection missing selected")?
            .iter()
            .map(|v| v.as_usize().ok_or("non-index in selected"))
            .collect::<Result<Vec<usize>, _>>()?;
        let r_diag = j
            .get("r_diag")
            .and_then(lra_obs::Json::as_arr)
            .ok_or("ColumnSelection missing r_diag")?
            .iter()
            .map(|v| v.as_f64().ok_or("non-number in r_diag"))
            .collect::<Result<Vec<f64>, _>>()?;
        Ok(ColumnSelection { selected, r_diag })
    }
}

/// Memory-bounded `R` factor of the panel formed by columns `idx` of
/// `src`: incremental QR over row chunks, never materializing more than
/// `chunk x |idx|` dense data at once.
pub fn panel_r<S: ColumnSource + ?Sized>(src: &S, idx: &[usize], par: Parallelism) -> DenseMatrix {
    let m = src.rows();
    let c = idx.len();
    if c == 0 {
        return DenseMatrix::zeros(0, 0);
    }
    // Chunk height: a few multiples of the panel width, at least 256.
    let chunk = (4 * c).max(256).min(m.max(1));
    let nchunks = m.div_ceil(chunk).max(1);
    if nchunks <= 1 {
        let panel = src.gather(idx, 0..m);
        return qr(&panel, par).r();
    }
    // Per-chunk Rs in parallel, folded by stack-and-requalify.
    let acc = lra_par::parallel_map_fold(
        par,
        nchunks,
        1,
        None::<DenseMatrix>,
        |range| {
            let mut local: Option<DenseMatrix> = None;
            for b in range {
                let lo = b * chunk;
                let hi = ((b + 1) * chunk).min(m);
                let block = src.gather(idx, lo..hi);
                let r = qr(&block, Parallelism::SEQ).r();
                local = Some(match local {
                    None => r,
                    Some(prev) => qr(&prev.vcat(&r), Parallelism::SEQ).r(),
                });
            }
            local
        },
        |a, b| match (a, b) {
            (None, x) => x,
            (x, None) => x,
            (Some(x), Some(y)) => Some(qr(&x.vcat(&y), Parallelism::SEQ).r()),
        },
    );
    acc.unwrap_or_else(|| DenseMatrix::zeros(0, c))
}

/// [`panel_r`] with an explicit [`Numerics`] mode. In `Fast` mode the
/// per-chunk `R` factors are merged by a fixed pairwise binary tree
/// (the "tournament norms" tree reduction): each merge is one small
/// stacked QR, and the tree shape depends only on the chunk count —
/// which the chunk grid derives from the panel shape alone — so Fast
/// results are deterministic across worker counts, just not equal to
/// the sequential fold of the `Bitwise` path.
pub fn panel_r_mode<S: ColumnSource + ?Sized>(
    src: &S,
    idx: &[usize],
    par: Parallelism,
    numerics: Numerics,
) -> DenseMatrix {
    if !numerics.is_fast() {
        return panel_r(src, idx, par);
    }
    let m = src.rows();
    let c = idx.len();
    if c == 0 {
        return DenseMatrix::zeros(0, 0);
    }
    let chunk = (4 * c).max(256).min(m.max(1));
    let nchunks = m.div_ceil(chunk).max(1);
    if nchunks <= 1 {
        let panel = src.gather(idx, 0..m);
        return qr(&panel, par).r();
    }
    // Per-chunk Rs in parallel into fixed slots.
    let mut level: Vec<DenseMatrix> = vec![DenseMatrix::zeros(0, 0); nchunks];
    {
        let ptr = level.as_mut_ptr() as usize;
        parallel_for(par, nchunks, 1, |range| {
            for b in range {
                let lo = b * chunk;
                let hi = ((b + 1) * chunk).min(m);
                let block = src.gather(idx, lo..hi);
                let r = qr(&block, Parallelism::SEQ).r();
                // SAFETY: each slot written by exactly one task.
                unsafe { *(ptr as *mut DenseMatrix).add(b) = r };
            }
        });
    }
    // Fixed binary-tree merge; the odd node passes through unchanged.
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(x) = it.next() {
            match it.next() {
                Some(y) => next.push(qr(&x.vcat(&y), Parallelism::SEQ).r()),
                None => next.push(x),
            }
        }
        level = next;
    }
    level.pop().expect("non-empty merge tree")
}

/// Rank the candidate columns `idx` at one tournament node: QRCP on the
/// panel `R`, returning up to `k` winners (in pivot order) plus the
/// QRCP `R` diagonal.
fn node_select<S: ColumnSource + ?Sized>(
    src: &S,
    idx: &[usize],
    k: usize,
    par: Parallelism,
    numerics: Numerics,
) -> (Vec<usize>, Vec<f64>) {
    let r = panel_r_mode(src, idx, par, numerics);
    let f = qrcp(&r, k);
    let winners: Vec<usize> = f.perm[..f.steps.min(k)].iter().map(|&p| idx[p]).collect();
    (winners, f.r_diag())
}

/// Select the `k` "most linearly independent" columns among `candidates`
/// (defaults to all columns of `src` when `candidates` is `None`).
///
/// Returns fewer than `k` winners only if the candidates' numerical
/// rank is below `k` (trailing exact-zero pivots are dropped).
pub fn tournament_columns<S: ColumnSource + ?Sized>(
    src: &S,
    candidates: Option<&[usize]>,
    k: usize,
    tree: TournamentTree,
    par: Parallelism,
) -> ColumnSelection {
    tournament_columns_mode(src, candidates, k, tree, par, Numerics::Bitwise)
}

/// [`tournament_columns`] with an explicit [`Numerics`] mode, threaded
/// into every node's panel-`R` factorization (see [`panel_r_mode`]).
/// The tournament structure itself — leaf blocks, merge order, QRCP
/// ranking — is identical in both modes.
pub fn tournament_columns_mode<S: ColumnSource + ?Sized>(
    src: &S,
    candidates: Option<&[usize]>,
    k: usize,
    tree: TournamentTree,
    par: Parallelism,
    numerics: Numerics,
) -> ColumnSelection {
    let all: Vec<usize>;
    let cand: &[usize] = match candidates {
        Some(c) => c,
        None => {
            all = (0..src.cols()).collect();
            &all
        }
    };
    assert!(k > 0, "tournament with k = 0");
    if cand.len() <= k {
        // Nothing to select; still compute r_diag for the estimate.
        let (sel, rd) = node_select(src, cand, k, par, numerics);
        return ColumnSelection {
            selected: sel,
            r_diag: rd,
        };
    }
    // Leaf stage: blocks of 2k columns, selected in parallel (this is
    // the communication-free "local reduction" of Section V).
    let block = 2 * k;
    let nblocks = cand.len().div_ceil(block);
    let mut level: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    {
        let level_ptr = level.as_mut_ptr() as usize;
        parallel_for(par, nblocks, 1, |range| {
            for b in range {
                let lo = b * block;
                let hi = ((b + 1) * block).min(cand.len());
                let (sel, _) = node_select(src, &cand[lo..hi], k, Parallelism::SEQ, numerics);
                // SAFETY: each slot written by one task.
                unsafe { *(level_ptr as *mut Vec<usize>).add(b) = sel };
            }
        });
    }
    match tree {
        TournamentTree::Binary => {
            while level.len() > 1 {
                let pairs = level.len() / 2;
                let odd = level.len() % 2 == 1;
                let mut next: Vec<Vec<usize>> = vec![Vec::new(); pairs + usize::from(odd)];
                {
                    let next_ptr = next.as_mut_ptr() as usize;
                    let level_ref = &level;
                    parallel_for(par, pairs, 1, |range| {
                        for p in range {
                            let mut merged = level_ref[2 * p].clone();
                            merged.extend_from_slice(&level_ref[2 * p + 1]);
                            let (sel, _) =
                                node_select(src, &merged, k, Parallelism::SEQ, numerics);
                            // SAFETY: disjoint slots.
                            unsafe { *(next_ptr as *mut Vec<usize>).add(p) = sel };
                        }
                    });
                }
                if odd {
                    let last = level.len() - 1;
                    next[pairs] = std::mem::take(&mut level[last]);
                }
                level = next;
            }
        }
        TournamentTree::Flat => {
            let mut acc = std::mem::take(&mut level[0]);
            for b in level.iter().skip(1) {
                let mut merged = acc.clone();
                merged.extend_from_slice(b);
                let (sel, _) = node_select(src, &merged, k, par, numerics);
                acc = sel;
            }
            level = vec![acc];
        }
    }
    // Root pass: final ranking of the winners (also yields r_diag).
    let winners = &level[0];
    let (selected, r_diag) = node_select(src, winners, k, par, numerics);
    ColumnSelection { selected, r_diag }
}

/// Row tournament: select the `k` "most linearly independent" *rows* of
/// the dense orthonormal panel `q` (`m x k`), i.e. a column tournament
/// on `q^T` (Algorithm 2, line 7).
pub fn tournament_rows_dense(
    q: &DenseMatrix,
    k: usize,
    tree: TournamentTree,
    par: Parallelism,
) -> Vec<usize> {
    tournament_rows_dense_mode(q, k, tree, par, Numerics::Bitwise)
}

/// [`tournament_rows_dense`] with an explicit [`Numerics`] mode.
pub fn tournament_rows_dense_mode(
    q: &DenseMatrix,
    k: usize,
    tree: TournamentTree,
    par: Parallelism,
    numerics: Numerics,
) -> Vec<usize> {
    let qt = q.transpose();
    tournament_columns_mode(&qt, None, k, tree, par, numerics).selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_dense::{matmul, singular_values};
    use lra_sparse::{CooMatrix, CscMatrix};

    fn rand_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        DenseMatrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn rand_sparse(rows: usize, cols: usize, per_col: usize, seed: u64) -> CscMatrix {
        let mut state = seed.wrapping_mul(0x517CC1B727220A95) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let mut coo = CooMatrix::new(rows, cols);
        for j in 0..cols {
            for _ in 0..per_col {
                let r = (next() % rows as u64) as usize;
                let v = ((next() >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
                coo.push(r, j, v);
            }
        }
        coo.to_csc()
    }

    #[test]
    fn panel_r_matches_direct_qr() {
        let a = rand_sparse(300, 6, 4, 1);
        let idx: Vec<usize> = (0..6).collect();
        for np in [1, 4] {
            let r = panel_r(&a, &idx, Parallelism::new(np));
            let direct = lra_dense::qr(&a.to_dense(), Parallelism::SEQ).r();
            // R is unique up to row signs; compare Gram matrices.
            let g1 = lra_dense::matmul_tn(&r, &r, Parallelism::SEQ);
            let g2 = lra_dense::matmul_tn(&direct, &direct, Parallelism::SEQ);
            assert!(g1.max_abs_diff(&g2) < 1e-10, "np={np}");
        }
    }

    #[test]
    fn selects_k_distinct_columns() {
        let a = rand_sparse(100, 40, 5, 2);
        for tree in [TournamentTree::Binary, TournamentTree::Flat] {
            let sel = tournament_columns(&a, None, 8, tree, Parallelism::new(4));
            assert_eq!(sel.selected.len(), 8, "{tree:?}");
            let mut s = sel.selected.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 8, "{tree:?}: duplicates");
            assert!(s.iter().all(|&c| c < 40));
        }
    }

    #[test]
    fn finds_independent_columns_of_low_rank_matrix() {
        // Rank-4 matrix: 4 independent columns + 36 linear combinations.
        let base = rand_dense(60, 4, 3);
        let mix = rand_dense(4, 36, 4);
        let deps = matmul(&base, &mix, Parallelism::SEQ);
        let full = base.hcat(&deps);
        let a = CscMatrix::from_dense(&full);
        for tree in [TournamentTree::Binary, TournamentTree::Flat] {
            let sel = tournament_columns(&a, None, 4, tree, Parallelism::new(3));
            let picked = full.select_columns(&sel.selected);
            let sv = singular_values(&picked);
            assert!(
                sv[3] > 1e-8,
                "{tree:?}: tournament picked dependent columns {:?} (sv={sv:?})",
                sel.selected
            );
        }
    }

    #[test]
    fn quality_close_to_direct_qrcp() {
        let a = rand_dense(50, 32, 5);
        let k = 6;
        let f = lra_dense::qrcp(&a, k);
        let direct = a.select_columns(&f.perm[..k]);
        let sigma_direct = singular_values(&direct)[k - 1];
        let sel = tournament_columns(&a, None, k, TournamentTree::Binary, Parallelism::new(2));
        let picked = a.select_columns(&sel.selected);
        let sigma_tp = singular_values(&picked)[k - 1];
        // Tournament may lose a bounded factor vs direct QRCP.
        assert!(
            sigma_tp > 0.05 * sigma_direct,
            "tournament quality too poor: {sigma_tp} vs {sigma_direct}"
        );
    }

    #[test]
    fn r_diag_first_entry_bounds() {
        // |R(1,1)| <= ||A||_2 (eq. 23) and is within the usual sqrt(n)
        // factor of it.
        let a = rand_dense(40, 20, 6);
        let sel = tournament_columns(&a, None, 5, TournamentTree::Binary, Parallelism::SEQ);
        let norm2 = singular_values(&a)[0];
        let r11 = sel.r_diag[0].abs();
        assert!(r11 <= norm2 * (1.0 + 1e-10), "r11={r11} > ||A||_2={norm2}");
        assert!(r11 >= norm2 / (20.0f64).sqrt() * 0.9, "r11 too small");
    }

    #[test]
    fn row_tournament_selects_k_rows() {
        let q = lra_dense::orth(&rand_dense(80, 7, 7), Parallelism::SEQ);
        let rows = tournament_rows_dense(&q, 7, TournamentTree::Binary, Parallelism::new(2));
        assert_eq!(rows.len(), 7);
        let picked = q.select_rows(&rows);
        let sv = singular_values(&picked);
        // Selected k x k block of an orthonormal matrix must be well
        // conditioned (that is the point of the row tournament).
        assert!(sv[6] > 1e-3, "row block nearly singular: {sv:?}");
    }

    #[test]
    fn fewer_candidates_than_k() {
        let a = rand_sparse(20, 3, 3, 8);
        let sel = tournament_columns(&a, None, 8, TournamentTree::Binary, Parallelism::SEQ);
        assert_eq!(sel.selected.len(), 3);
    }

    #[test]
    fn rank_deficient_returns_fewer() {
        // Rank-2 matrix, ask for 5.
        let base = rand_dense(30, 2, 9);
        let mix = rand_dense(2, 10, 10);
        let a = CscMatrix::from_dense(&matmul(&base, &mix, Parallelism::SEQ));
        let sel = tournament_columns(&a, None, 5, TournamentTree::Binary, Parallelism::SEQ);
        assert!(
            sel.selected.len() >= 2,
            "must keep at least the independent ones"
        );
        // All trailing r_diag beyond rank are ~0, so selection is cut.
        let picked = a.to_dense().select_columns(&sel.selected);
        let sv = singular_values(&picked);
        assert!(sv[1] > 1e-10);
    }

    #[test]
    fn candidate_subset_respected() {
        let a = rand_sparse(50, 30, 4, 11);
        let cands: Vec<usize> = (10..30).collect();
        let sel =
            tournament_columns(&a, Some(&cands), 6, TournamentTree::Binary, Parallelism::SEQ);
        assert!(sel.selected.iter().all(|c| cands.contains(c)));
    }

    #[test]
    fn deterministic_across_np() {
        let a = rand_sparse(120, 64, 5, 12);
        let s1 = tournament_columns(&a, None, 8, TournamentTree::Binary, Parallelism::new(1));
        let s2 = tournament_columns(&a, None, 8, TournamentTree::Binary, Parallelism::new(4));
        assert_eq!(s1.selected, s2.selected, "tournament must be deterministic");
    }

    #[test]
    fn fast_panel_r_preserves_gram_and_is_np_stable() {
        // Tall panel so several chunks form and the fast tree actually
        // merges. The Gram matrix (what pivot ranking consumes) must
        // match the bitwise fold normwise; the fast result itself must
        // be bitwise stable across worker counts (shape-only tree).
        let a = rand_sparse(1400, 6, 5, 13);
        let idx: Vec<usize> = (0..6).collect();
        let r_bit = panel_r(&a, &idx, Parallelism::SEQ);
        let r_fast = panel_r_mode(&a, &idx, Parallelism::new(1), Numerics::Fast);
        let g_bit = lra_dense::matmul_tn(&r_bit, &r_bit, Parallelism::SEQ);
        let g_fast = lra_dense::matmul_tn(&r_fast, &r_fast, Parallelism::SEQ);
        assert!(g_bit.max_abs_diff(&g_fast) < 1e-10 * (1.0 + g_bit.max_abs()));
        let r_fast4 = panel_r_mode(&a, &idx, Parallelism::new(4), Numerics::Fast);
        for (x, y) in r_fast.as_slice().iter().zip(r_fast4.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "fast panel must be np-stable");
        }
    }

    #[test]
    fn fast_tournament_is_np_stable() {
        let a = rand_sparse(150, 64, 5, 14);
        let s1 = tournament_columns_mode(
            &a,
            None,
            8,
            TournamentTree::Binary,
            Parallelism::new(1),
            Numerics::Fast,
        );
        let s2 = tournament_columns_mode(
            &a,
            None,
            8,
            TournamentTree::Binary,
            Parallelism::new(4),
            Numerics::Fast,
        );
        assert_eq!(s1.selected, s2.selected);
        for (x, y) in s1.r_diag.iter().zip(&s2.r_diag) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// Ablation variant of [`panel_r`]: compute the panel `R` through the
/// Gram matrix (`G = P^T P`, `R = chol(G)`). Half the flops of TSQR and
/// one pass over the data, but it squares the condition number, so
/// pivot selection can degrade on ill-conditioned panels (the reason
/// TSQR is the default; see DESIGN.md ablations). Falls back to TSQR
/// when the Cholesky breaks down.
pub fn panel_r_gram<S: ColumnSource + ?Sized>(
    src: &S,
    idx: &[usize],
    par: Parallelism,
) -> DenseMatrix {
    let m = src.rows();
    let c = idx.len();
    if c == 0 {
        return DenseMatrix::zeros(0, 0);
    }
    let chunk = (4 * c).max(256).min(m.max(1));
    let nchunks = m.div_ceil(chunk).max(1);
    // G = sum over row chunks of P_chunk^T P_chunk.
    let gram = lra_par::parallel_map_fold(
        par,
        nchunks,
        1,
        DenseMatrix::zeros(c, c),
        |range| {
            let mut local = DenseMatrix::zeros(c, c);
            for b in range {
                let lo = b * chunk;
                let hi = ((b + 1) * chunk).min(m);
                let block = src.gather(idx, lo..hi);
                let g = lra_dense::matmul_tn(&block, &block, Parallelism::SEQ);
                local.axpy(1.0, &g);
            }
            local
        },
        |mut a, b| {
            a.axpy(1.0, &b);
            a
        },
    );
    match lra_dense::cholesky_upper(&gram) {
        Some(r) => r,
        None => panel_r(src, idx, par),
    }
}

#[cfg(test)]
mod gram_tests {
    use super::*;

    fn rand_sparse(
        rows: usize,
        cols: usize,
        per_col: usize,
        seed: u64,
    ) -> lra_sparse::CscMatrix {
        let mut state = seed.wrapping_mul(0x517CC1B727220A95) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let mut coo = lra_sparse::CooMatrix::new(rows, cols);
        for j in 0..cols {
            for _ in 0..per_col {
                let r = (next() % rows as u64) as usize;
                let v = ((next() >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
                coo.push(r, j, v);
            }
        }
        coo.to_csc()
    }

    #[test]
    fn gram_r_matches_tsqr_r_gram() {
        let a = rand_sparse(200, 7, 5, 3);
        let idx: Vec<usize> = (0..7).collect();
        let r1 = panel_r(&a, &idx, Parallelism::SEQ);
        let r2 = panel_r_gram(&a, &idx, Parallelism::new(3));
        let g1 = lra_dense::matmul_tn(&r1, &r1, Parallelism::SEQ);
        let g2 = lra_dense::matmul_tn(&r2, &r2, Parallelism::SEQ);
        assert!(g1.max_abs_diff(&g2) < 1e-9 * (1.0 + g1.max_abs()));
    }

    #[test]
    fn gram_pivots_match_on_well_conditioned_panel() {
        let a = rand_sparse(150, 12, 6, 4);
        let idx: Vec<usize> = (0..12).collect();
        let f1 = lra_dense::qrcp(&panel_r(&a, &idx, Parallelism::SEQ), 4);
        let f2 = lra_dense::qrcp(&panel_r_gram(&a, &idx, Parallelism::SEQ), 4);
        assert_eq!(f1.selected(4), f2.selected(4));
    }

    #[test]
    fn column_selection_json_roundtrip_is_bitwise() {
        let sel = ColumnSelection {
            selected: vec![7, 0, 42],
            r_diag: vec![1.0 / 3.0, -2.5e-300, 9.75],
        };
        let back = ColumnSelection::from_json(&sel.to_json()).unwrap();
        assert_eq!(back.selected, sel.selected);
        for (a, b) in sel.r_diag.iter().zip(&back.r_diag) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Also exact through the textual form a store persists.
        let text = sel.to_json().to_string();
        let reparsed = ColumnSelection::from_json(&lra_obs::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(reparsed.r_diag, sel.r_diag);
    }
}
