//! `lra-recover` — supervised recovery for the SPMD factorizations.
//!
//! The `lra-comm` runtime *contains* failures: a killed or panicking
//! rank poisons its peers and every rank comes back as a typed
//! [`CommError`] instead of a hung process. This crate adds the layer
//! above containment — *recovery*:
//!
//! - [`CheckpointStore`] / [`Checkpoint`] persist iteration state at
//!   collective boundaries so a restarted run continues from the last
//!   consistent snapshot instead of iteration 0.
//! - [`run_supervised`] wraps repeated `run_with` attempts in a
//!   [`RecoveryPolicy`]: transient failures (watchdog timeouts) are
//!   retried on the same grid with exponential backoff; permanent
//!   failures (rank death) shrink the grid by one rank and resume from
//!   checkpoint; when the grid would shrink below `min_ranks`, the
//!   supervisor degrades to a caller-supplied sequential fallback.
//! - [`Budget`] / [`CancelToken`] bound a run cooperatively (wall-clock
//!   deadline, iteration cap, per-rank memory ceiling, external
//!   cancellation): drivers check at panel boundaries, checkpoint, and
//!   return a typed partial result carrying its achieved tolerance
//!   instead of being killed unilaterally.
//! - Every recovery action is a [`RecoveryEvent`], mirrored into the
//!   global metrics registry and the Chrome trace by [`record_event`].
//!
//! The classification rule (see [`CommError::is_transient`]) is:
//! timeouts are transient — the stuck rank may simply have been
//! delayed, so the same grid gets another chance; panics and kills are
//! permanent — the rank's state is gone, so the grid shrinks.
//! `PeerFailed` entries are collateral, never the classification basis;
//! the supervisor always classifies on the *origin* rank's own error.

mod budget;
mod events;
mod fault;
mod store;

pub use budget::{Budget, BudgetClock, BudgetTrip, CancelToken, DeadlineGuard};
pub use events::{record_event, record_guard_trip, RecoveryEvent};
pub use fault::{StorageFaultKind, StorageFaultPlan};
pub use store::{Checkpoint, CheckpointStore, CHECKPOINT_VERSION, DEFAULT_RETENTION};

use lra_comm::{CommError, RunConfig, RunReport};
use std::time::{Duration, Instant};

/// How hard [`run_supervised`] tries before giving up.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Maximum recovery actions (retries + grid shrinks) across the
    /// whole supervised run. Default: 8.
    pub max_retries: u64,
    /// Initial backoff before retrying a transient failure; doubles on
    /// each consecutive retry, capped at 5 s. Default: 50 ms.
    pub backoff: Duration,
    /// The grid never shrinks below this many ranks; a permanent
    /// failure that would violate it degrades to the sequential
    /// fallback instead. Default: 1.
    pub min_ranks: usize,
    /// Wall-clock budget for the whole supervised run (checked before
    /// each attempt). Default: none.
    pub deadline: Option<Duration>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 8,
            backoff: Duration::from_millis(50),
            min_ranks: 1,
            deadline: None,
        }
    }
}

impl RecoveryPolicy {
    /// Set [`RecoveryPolicy::max_retries`].
    pub fn with_max_retries(mut self, n: u64) -> Self {
        self.max_retries = n;
        self
    }

    /// Set [`RecoveryPolicy::backoff`].
    pub fn with_backoff(mut self, d: Duration) -> Self {
        self.backoff = d;
        self
    }

    /// Set [`RecoveryPolicy::min_ranks`].
    pub fn with_min_ranks(mut self, n: usize) -> Self {
        self.min_ranks = n;
        self
    }

    /// Set [`RecoveryPolicy::deadline`].
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// Why a supervised run gave up.
#[derive(Debug)]
pub enum RecoveryError {
    /// The policy's retry budget ran out (or the degradation fallback
    /// itself declined / failed).
    RecoveryExhausted {
        /// Recovery actions taken before giving up.
        attempts: u64,
        /// Rendered error from the last failed attempt.
        last_error: String,
        /// Everything the supervisor did along the way.
        events: Vec<RecoveryEvent>,
    },
    /// The policy deadline elapsed before an attempt succeeded.
    DeadlineExceeded {
        /// Wall time spent when the deadline check fired.
        elapsed: Duration,
        /// Everything the supervisor did along the way.
        events: Vec<RecoveryEvent>,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::RecoveryExhausted {
                attempts,
                last_error,
                ..
            } => write!(
                f,
                "recovery exhausted after {attempts} action(s); last error: {last_error}"
            ),
            RecoveryError::DeadlineExceeded { elapsed, .. } => write!(
                f,
                "recovery deadline exceeded after {:.3}s",
                elapsed.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl RecoveryError {
    /// The recovery events accumulated before giving up.
    pub fn events(&self) -> &[RecoveryEvent] {
        match self {
            RecoveryError::RecoveryExhausted { events, .. }
            | RecoveryError::DeadlineExceeded { events, .. } => events,
        }
    }
}

/// A successful supervised run, with its recovery history.
#[derive(Debug)]
pub struct Supervised<T> {
    /// The algorithm's result.
    pub value: T,
    /// Recovery actions taken before success (0 = clean first attempt).
    pub attempts: u64,
    /// Rank count of the attempt that produced the value (meaningless
    /// when `degraded`).
    pub final_np: usize,
    /// True when the value came from the sequential fallback.
    pub degraded: bool,
    /// Everything the supervisor did along the way.
    pub events: Vec<RecoveryEvent>,
}

/// Pick the error that explains a fully-failed report: the first
/// non-collateral entry (every `PeerFailed` points at an origin rank
/// whose own `Failed`/`Timeout` entry is authoritative), falling back
/// to the first error if — unexpectedly — only collateral remains.
fn primary_error<T>(report: &RunReport<T>) -> Option<&CommError> {
    let errors = || report.results.iter().filter_map(|r| r.as_ref().err());
    errors().find(|e| !e.is_peer_failure()).or_else(|| errors().next())
}

/// Run `attempt` under `policy`, recovering from failures until it
/// succeeds, the policy is exhausted, or the deadline passes.
///
/// `attempt(np, config, recoveries, token)` runs the algorithm on an
/// `np`-rank grid (typically via [`lra_comm::run_with`], resuming from
/// the caller's [`CheckpointStore`]) and returns the raw [`RunReport`].
/// The algorithms here produce *replicated* output — every rank returns
/// the same factors — so any `Ok` rank carries the complete result and
/// a partially-failed report still succeeds.
///
/// `token` is the supervisor's [`CancelToken`]. When
/// [`RecoveryPolicy::deadline`] is set, a [`DeadlineGuard`] cancels it
/// mid-attempt once the deadline elapses; attempts that thread it into
/// their driver [`Budget`] then stop cooperatively at the next panel
/// boundary and return a partial result, instead of running to
/// completion past the deadline. The deadline is still checked between
/// attempts, so budget-unaware attempts keep the old behavior.
///
/// On total failure the supervisor classifies the primary error:
///
/// - **transient** ([`CommError::is_transient`]): sleep the current
///   backoff (doubling, capped at 5 s) and retry on the same grid;
/// - **permanent**: strip the chaos plan's kills for the dead rank
///   (a crash is one-shot — the resumed attempt must not re-kill it
///   forever), shrink the grid to `np - 1`, and resume; if that would
///   drop below `min_ranks`, call `fallback` once instead and mark the
///   result [`Supervised::degraded`].
///
/// `fallback` returning `None` means no degradation path exists; the
/// supervisor then reports [`RecoveryError::RecoveryExhausted`].
pub fn run_supervised<T, A, FB>(
    np: usize,
    config: &RunConfig,
    policy: &RecoveryPolicy,
    mut attempt: A,
    fallback: FB,
) -> Result<Supervised<T>, RecoveryError>
where
    A: FnMut(usize, &RunConfig, u64, &CancelToken) -> RunReport<T>,
    FB: FnOnce(&CancelToken) -> Option<T>,
{
    let start = Instant::now();
    let mut np = np.max(1);
    let mut cfg = config.clone();
    let mut backoff = policy.backoff;
    let mut recoveries: u64 = 0;
    let mut events: Vec<RecoveryEvent> = Vec::new();
    let mut fallback = Some(fallback);
    let token = CancelToken::new();
    let _deadline_guard = policy
        .deadline
        .map(|d| DeadlineGuard::arm(token.clone(), d));

    loop {
        if let Some(deadline) = policy.deadline {
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return Err(RecoveryError::DeadlineExceeded { elapsed, events });
            }
        }

        let report = attempt(np, &cfg, recoveries, &token);
        let (origin, transient, last_error) = match primary_error(&report) {
            None => (0, false, String::new()),
            Some(e) => (e.origin_rank(), e.is_transient(), e.to_string()),
        };
        if let Some(value) = report.results.into_iter().flatten().next() {
            return Ok(Supervised {
                value,
                attempts: recoveries,
                final_np: np,
                degraded: false,
                events,
            });
        }

        if recoveries >= policy.max_retries {
            return Err(RecoveryError::RecoveryExhausted {
                attempts: recoveries,
                last_error,
                events,
            });
        }
        recoveries += 1;

        if transient {
            let ev = RecoveryEvent::Retry {
                attempt: recoveries,
                backoff,
                error: last_error,
            };
            record_event(&ev);
            events.push(ev);
            // Never sleep past the deadline: the loop-top check should
            // fire the moment the budget is spent, not a backoff later.
            let sleep_for = match policy.deadline {
                Some(deadline) => backoff.min(deadline.saturating_sub(start.elapsed())),
                None => backoff,
            };
            std::thread::sleep(sleep_for);
            backoff = (backoff * 2).min(Duration::from_secs(5));
        } else {
            // The dead rank's state is gone; its scheduled kills are
            // spent (one-shot crash semantics).
            cfg.faults = cfg.faults.clone().without_kills_for(origin);
            if np.saturating_sub(1) < policy.min_ranks.max(1) {
                let ev = RecoveryEvent::Degrade {
                    reason: last_error.clone(),
                };
                record_event(&ev);
                events.push(ev);
                if let Some(value) = fallback.take().and_then(|fb| fb(&token)) {
                    return Ok(Supervised {
                        value,
                        attempts: recoveries,
                        final_np: np,
                        degraded: true,
                        events,
                    });
                }
                return Err(RecoveryError::RecoveryExhausted {
                    attempts: recoveries,
                    last_error,
                    events,
                });
            }
            np -= 1;
            let ev = RecoveryEvent::Resume {
                np,
                failed_rank: origin,
            };
            record_event(&ev);
            events.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_comm::{run_with, FaultPlan};

    fn sum_grid(ctx: &lra_comm::Ctx) -> f64 {
        let mut acc = 0.0;
        for it in 1..=3u64 {
            ctx.begin_iteration(it);
            acc += ctx.allreduce(it as f64, |a, b| a + b);
        }
        acc
    }

    #[test]
    fn clean_run_takes_zero_recovery_actions() {
        let got = run_supervised(
            3,
            &RunConfig::default(),
            &RecoveryPolicy::default(),
            |np, cfg, _, _| run_with(np, cfg, sum_grid),
            |_| None,
        )
        .unwrap();
        assert_eq!(got.attempts, 0);
        assert_eq!(got.final_np, 3);
        assert!(!got.degraded);
        assert!(got.events.is_empty());
        assert_eq!(got.value, (1.0 + 2.0 + 3.0) * 3.0);
    }

    #[test]
    fn permanent_failure_shrinks_the_grid_and_resumes() {
        let cfg = RunConfig {
            faults: FaultPlan::default().kill_rank_at_iteration(1, 2),
            ..RunConfig::default()
        };
        let got = run_supervised(
            3,
            &cfg,
            &RecoveryPolicy::default(),
            |np, cfg, _, _| run_with(np, cfg, sum_grid),
            |_| None,
        )
        .unwrap();
        assert_eq!(got.attempts, 1);
        assert_eq!(got.final_np, 2);
        assert!(!got.degraded);
        assert!(matches!(
            got.events[0],
            RecoveryEvent::Resume {
                np: 2,
                failed_rank: 1
            }
        ));
        assert_eq!(got.value, (1.0 + 2.0 + 3.0) * 2.0);
    }

    #[test]
    fn transient_failure_retries_on_the_same_grid() {
        // Attempt 0 drops rank 0's first send under a tiny watchdog →
        // a Timeout (transient). The supervisor must back off and retry
        // the SAME grid; the test's closure clears the fault for
        // attempt ≥ 1, standing in for a delay that resolved.
        let faulty = RunConfig {
            watchdog: Duration::from_millis(50),
            faults: FaultPlan::default().drop_nth_send(0, 0),
            ..RunConfig::default()
        };
        let clean = RunConfig {
            watchdog: Duration::from_millis(50),
            ..RunConfig::default()
        };
        let policy = RecoveryPolicy::default().with_backoff(Duration::from_millis(1));
        let got = run_supervised(
            2,
            &faulty,
            &policy,
            |np, _, recoveries, _| {
                let cfg = if recoveries == 0 { &faulty } else { &clean };
                run_with(np, cfg, sum_grid)
            },
            |_| None,
        )
        .unwrap();
        assert_eq!(got.attempts, 1);
        assert_eq!(got.final_np, 2, "transient retry must not shrink the grid");
        assert!(matches!(got.events[0], RecoveryEvent::Retry { .. }));
    }

    #[test]
    fn degrades_to_fallback_when_grid_cannot_shrink() {
        let cfg = RunConfig {
            faults: FaultPlan::default().kill_rank_at_iteration(0, 1),
            ..RunConfig::default()
        };
        let policy = RecoveryPolicy::default().with_min_ranks(2);
        let got = run_supervised(
            2,
            &cfg,
            &policy,
            |np, cfg, _, _| run_with(np, cfg, sum_grid),
            |_| Some(-1.0),
        )
        .unwrap();
        assert!(got.degraded);
        assert_eq!(got.value, -1.0);
        assert!(matches!(got.events[0], RecoveryEvent::Degrade { .. }));
    }

    #[test]
    fn exhaustion_is_a_typed_error_carrying_the_last_failure() {
        let policy = RecoveryPolicy::default().with_max_retries(0);
        let err = run_supervised(
            1,
            &RunConfig::default(),
            &policy,
            |_, _, _, _| RunReport::<u32> {
                results: vec![Err(CommError::Failed {
                    rank: 0,
                    payload: "synthetic".to_string(),
                })],
                stats: vec![],
            },
            |_| None,
        )
        .unwrap_err();
        match &err {
            RecoveryError::RecoveryExhausted {
                attempts,
                last_error,
                ..
            } => {
                assert_eq!(*attempts, 0);
                assert!(last_error.contains("synthetic"), "{last_error}");
            }
            other => panic!("{other:?}"),
        }
        assert!(err.to_string().contains("recovery exhausted"));
    }

    #[test]
    fn deadline_zero_fires_before_the_first_attempt() {
        let policy = RecoveryPolicy::default().with_deadline(Duration::ZERO);
        let err = run_supervised(
            2,
            &RunConfig::default(),
            &policy,
            |np, cfg, _, _| run_with(np, cfg, sum_grid),
            |_| None,
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::DeadlineExceeded { .. }));
    }

    #[test]
    fn partial_failure_with_one_ok_rank_still_succeeds() {
        // Replicated output: any Ok rank carries the full result.
        let got = run_supervised(
            2,
            &RunConfig::default(),
            &RecoveryPolicy::default(),
            |_, _, _, _| RunReport {
                results: vec![
                    Err(CommError::Failed {
                        rank: 0,
                        payload: "late straggler".to_string(),
                    }),
                    Ok(99u32),
                ],
                stats: vec![],
            },
            |_| None,
        )
        .unwrap();
        assert_eq!(got.value, 99);
        assert_eq!(got.attempts, 0);
    }

    #[test]
    fn transient_backoff_is_clamped_to_the_remaining_deadline() {
        // A pathological backoff (1 h) with a short deadline: every
        // attempt times out, and without the clamp the supervisor would
        // sleep the full hour before noticing the deadline. With it,
        // the run must fail by deadline in well under the backoff.
        let faulty = RunConfig {
            watchdog: Duration::from_millis(50),
            faults: FaultPlan::default().drop_nth_send(0, 0),
            ..RunConfig::default()
        };
        let policy = RecoveryPolicy::default()
            .with_backoff(Duration::from_secs(3600))
            .with_deadline(Duration::from_millis(500));
        let start = Instant::now();
        let err = run_supervised(
            2,
            &faulty,
            &policy,
            |np, cfg, _, _| run_with(np, cfg, sum_grid),
            |_| None,
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::DeadlineExceeded { .. }), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "backoff overshot the deadline: slept {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn deadline_guard_cancels_the_token_mid_attempt() {
        // The attempt cooperatively polls the supervisor's token — the
        // way budget-aware drivers do — and must observe the
        // cancellation *during* the attempt, not between attempts.
        let policy = RecoveryPolicy::default().with_deadline(Duration::from_millis(30));
        let got = run_supervised(
            1,
            &RunConfig::default(),
            &policy,
            |_, _, _, token| {
                let start = Instant::now();
                while !token.is_cancelled() && start.elapsed() < Duration::from_secs(10) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                RunReport {
                    results: vec![Ok(token.is_cancelled())],
                    stats: vec![],
                }
            },
            |_| None,
        )
        .unwrap();
        assert!(got.value, "token must fire mid-attempt at the deadline");
    }
}
