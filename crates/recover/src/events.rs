//! The recovery event stream.
//!
//! Every recovery action — a checkpoint save, a retry after a transient
//! fault, a resume on a shrunk grid, degradation to a sequential
//! fallback, a numerical guard trip — is one [`RecoveryEvent`].
//! [`record_event`] mirrors each event into the process-global
//! [`lra_obs::metrics`] registry (as a `recover.*` counter) and into
//! the Chrome trace (as an instant marker on the current lane), so
//! recovery is visible both in `BENCH_*.json` metric snapshots and on
//! the traced timeline next to the collectives it interrupted.

use std::time::Duration;

/// One observable recovery action.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// A checkpoint was persisted to a
    /// [`crate::CheckpointStore`].
    Checkpoint {
        /// [`crate::Checkpoint::KIND`] of the snapshot.
        kind: &'static str,
        /// Algorithm iteration the snapshot covers.
        iteration: usize,
    },
    /// A transient failure (watchdog timeout) is being retried on the
    /// same grid after backing off.
    Retry {
        /// 1-based recovery-action counter.
        attempt: u64,
        /// How long the supervisor slept before this retry.
        backoff: Duration,
        /// Rendered error that triggered the retry.
        error: String,
    },
    /// A permanent failure (rank panic/kill) is being resumed on a
    /// shrunk grid.
    Resume {
        /// Rank count of the next attempt (`previous - 1`).
        np: usize,
        /// The rank whose death triggered the shrink.
        failed_rank: usize,
    },
    /// The grid shrank below `min_ranks`: the supervisor degraded to
    /// the sequential fallback.
    Degrade {
        /// Why (rendered last error).
        reason: String,
    },
    /// A numerical guard fired inside an iteration loop (NaN/Inf on a
    /// panel norm or error indicator).
    GuardTrip {
        /// What was non-finite, and where.
        what: String,
    },
    /// A persisted checkpoint generation failed validation at load time
    /// (torn/truncated envelope, CRC mismatch, unparseable state) and
    /// was skipped. The load scan continues to the next-older
    /// generation.
    CorruptCheckpoint {
        /// Generation number of the rejected snapshot.
        generation: u64,
        /// Why the snapshot was rejected.
        reason: String,
    },
    /// A load rolled back past one or more corrupt generations and
    /// resumed from an older valid snapshot.
    Rollback {
        /// Newest generation that existed (and was skipped).
        from: u64,
        /// Generation actually loaded.
        to: u64,
    },
    /// A [`crate::Budget`] limit or [`crate::CancelToken`] tripped at a
    /// panel boundary: the driver checkpointed (when hooks were
    /// attached) and returned a partial result with its achieved
    /// tolerance instead of running on.
    BudgetTrip {
        /// The typed verdict.
        trip: crate::BudgetTrip,
        /// Completed iterations when the trip was observed.
        iteration: usize,
    },
}

impl RecoveryEvent {
    /// Stable dotted name used for both the metric counter and the
    /// trace instant.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryEvent::Checkpoint { .. } => "recover.checkpoint",
            RecoveryEvent::Retry { .. } => "recover.retry",
            RecoveryEvent::Resume { .. } => "recover.resume",
            RecoveryEvent::Degrade { .. } => "recover.degrade",
            RecoveryEvent::GuardTrip { .. } => "recover.guard_trip",
            RecoveryEvent::CorruptCheckpoint { .. } => "recover.corrupt_checkpoint",
            RecoveryEvent::Rollback { .. } => "recover.rollback",
            // External cancellation gets its own counter so operators
            // can tell "user hit stop" from "resource limit hit".
            RecoveryEvent::BudgetTrip {
                trip: crate::BudgetTrip::Cancelled,
                ..
            } => "recover.cancelled",
            RecoveryEvent::BudgetTrip { .. } => "recover.budget_trip",
        }
    }
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryEvent::Checkpoint { kind, iteration } => {
                write!(f, "checkpoint {kind} at iteration {iteration}")
            }
            RecoveryEvent::Retry {
                attempt,
                backoff,
                error,
            } => write!(
                f,
                "retry #{attempt} after {:.3}s backoff (transient: {error})",
                backoff.as_secs_f64()
            ),
            RecoveryEvent::Resume { np, failed_rank } => {
                write!(f, "resume on np={np} after rank {failed_rank} died")
            }
            RecoveryEvent::Degrade { reason } => {
                write!(f, "degraded to sequential fallback ({reason})")
            }
            RecoveryEvent::GuardTrip { what } => write!(f, "numerical guard trip: {what}"),
            RecoveryEvent::CorruptCheckpoint { generation, reason } => {
                write!(f, "corrupt checkpoint generation {generation} skipped ({reason})")
            }
            RecoveryEvent::Rollback { from, to } => {
                write!(f, "rolled back from generation {from} to {to}")
            }
            RecoveryEvent::BudgetTrip { trip, iteration } => {
                write!(f, "budget trip at iteration {iteration}: {trip}")
            }
        }
    }
}

/// Record `event` into the global metrics registry and the trace.
pub fn record_event(event: &RecoveryEvent) {
    lra_obs::metrics::global().inc_counter(event.name(), 1);
    lra_obs::trace::instant(event.name());
}

/// Convenience for iteration loops: record a
/// [`RecoveryEvent::GuardTrip`] and return it (callers typically keep
/// it next to the `Breakdown` they escalate).
pub fn record_guard_trip(what: impl Into<String>) -> RecoveryEvent {
    let ev = RecoveryEvent::GuardTrip { what: what.into() };
    record_event(&ev);
    ev
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_obs::MetricValue;

    #[test]
    fn events_bump_global_counters() {
        let before = match lra_obs::metrics::global().get("recover.guard_trip") {
            Some(MetricValue::Counter(c)) => c,
            _ => 0,
        };
        record_guard_trip("indicator NaN at iteration 3");
        match lra_obs::metrics::global().get("recover.guard_trip") {
            Some(MetricValue::Counter(c)) => assert_eq!(c, before + 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn display_names_the_action() {
        let ev = RecoveryEvent::Resume {
            np: 3,
            failed_rank: 1,
        };
        assert_eq!(ev.name(), "recover.resume");
        assert!(ev.to_string().contains("np=3"));
    }
}
