//! Storage-fault injection plans for checkpoint stores.
//!
//! [`StorageFaultPlan`] is the durability-layer analogue of
//! `lra-comm`'s `FaultPlan`: a declarative, deterministic, replayable
//! description of the storage failures a [`crate::CheckpointStore`]
//! should inject while a program runs. The flavors cover the classic
//! ways checkpoints rot in production:
//!
//! - **torn write** — the medium persisted only a prefix of the
//!   snapshot (power loss mid-`write(2)` on a filesystem without data
//!   journaling);
//! - **bit flip** — the medium returned the full snapshot with one bit
//!   inverted (silent media corruption, a cable/firmware error);
//! - **ENOSPC** — the write itself failed cleanly (disk full,
//!   quota exceeded);
//! - **crash before rename** — the temporary file was written and
//!   fsynced but the process died before the atomic publish, so the
//!   new generation never became visible (leftover `*.tmp`);
//! - **stale read** — the reader does not see the newest published
//!   generation (an un-fsynced directory entry lost in a crash, or a
//!   caching network filesystem serving old data).
//!
//! Faults are indexed by the store's *save index* (0-based count of
//! `save` calls) or *load index* (0-based count of `load` calls), so a
//! plan replays exactly; [`StorageFaultPlan::seeded`] derives a single
//! random fault from a seed for chaos soaks.

use lra_obs::trace;

/// The storage-fault flavors a plan can inject, enumerable so a
/// fault-space explorer can cover every flavor at every site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFaultKind {
    /// Persist only a prefix of the snapshot bytes.
    TornWrite,
    /// Invert one bit of the persisted snapshot.
    BitFlip,
    /// Fail the save cleanly (no space left on device).
    Enospc,
    /// Write the temporary file but never publish the generation.
    CrashBeforeRename,
    /// Serve the previous generation instead of the newest.
    StaleRead,
}

impl StorageFaultKind {
    /// Every flavor, in a stable order (for exhaustive exploration).
    pub const ALL: [StorageFaultKind; 5] = [
        StorageFaultKind::TornWrite,
        StorageFaultKind::BitFlip,
        StorageFaultKind::Enospc,
        StorageFaultKind::CrashBeforeRename,
        StorageFaultKind::StaleRead,
    ];

    /// Stable lowercase label (used in verdict tables and trace
    /// instant names).
    pub fn label(&self) -> &'static str {
        match self {
            StorageFaultKind::TornWrite => "torn_write",
            StorageFaultKind::BitFlip => "bit_flip",
            StorageFaultKind::Enospc => "enospc",
            StorageFaultKind::CrashBeforeRename => "crash_before_rename",
            StorageFaultKind::StaleRead => "stale_read",
        }
    }
}

impl std::fmt::Display for StorageFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A declarative set of storage faults to inject into one
/// [`crate::CheckpointStore`]. Build with the chainable constructors:
///
/// ```
/// use lra_recover::StorageFaultPlan;
///
/// let plan = StorageFaultPlan::new()
///     .torn_write_at(2, 17)      // save #2 persists only a prefix
///     .enospc_at(5)              // save #5 fails cleanly
///     .stale_reads_from(3);      // loads #3.. don't see the newest gen
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StorageFaultPlan {
    torn: Vec<(u64, u64)>,
    flips: Vec<(u64, u64)>,
    enospc: Vec<u64>,
    crash: Vec<u64>,
    stale_at: Vec<u64>,
    stale_from: Option<u64>,
}

impl StorageFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Truncate the snapshot written by save `save_index` (0-based):
    /// only `keep % len` bytes reach the store, where `len` is the
    /// envelope length — any `keep` value is valid and replayable.
    pub fn torn_write_at(mut self, save_index: u64, keep: u64) -> Self {
        self.torn.push((save_index, keep));
        self
    }

    /// Invert bit `bit % (8 * len)` of the snapshot written by save
    /// `save_index` (silent media corruption).
    pub fn bit_flip_at(mut self, save_index: u64, bit: u64) -> Self {
        self.flips.push((save_index, bit));
        self
    }

    /// Fail save `save_index` cleanly, as if the device were full. The
    /// previously published generations must survive untouched.
    pub fn enospc_at(mut self, save_index: u64) -> Self {
        self.enospc.push(save_index);
        self
    }

    /// Save `save_index` writes (and fsyncs) its temporary file but the
    /// "process" dies before the rename: the generation never becomes
    /// visible, and a leftover `*.tmp` file is stranded for `clear` to
    /// sweep. The save call itself reports success — the caller
    /// believed the checkpoint was taken.
    pub fn crash_before_rename_at(mut self, save_index: u64) -> Self {
        self.crash.push(save_index);
        self
    }

    /// Load `load_index` (0-based) does not see the newest generation —
    /// it reads as if the latest publish never happened.
    pub fn stale_read_at(mut self, load_index: u64) -> Self {
        self.stale_at.push(load_index);
        self
    }

    /// Every load with index `>= load_index` is stale (sticky variant
    /// of [`StorageFaultPlan::stale_read_at`]). SPMD resumes issue one
    /// load *per rank* concurrently in nondeterministic order; the
    /// sticky form guarantees all ranks of a resume attempt observe the
    /// same (stale) snapshot, keeping the injected fault deterministic.
    pub fn stale_reads_from(mut self, load_index: u64) -> Self {
        self.stale_from = Some(match self.stale_from {
            Some(prev) => prev.min(load_index),
            None => load_index,
        });
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.torn.is_empty()
            && self.flips.is_empty()
            && self.enospc.is_empty()
            && self.crash.is_empty()
            && self.stale_at.is_empty()
            && self.stale_from.is_none()
    }

    /// A plan injecting exactly one seed-derived fault: the flavor,
    /// site index (within `saves`/`loads` sites) and corruption
    /// coordinates all come from a SplitMix64 stream, so a failing
    /// chaos soak reproduces from its seed alone.
    pub fn seeded(seed: u64, saves: u64, loads: u64) -> Self {
        let mut s = splitmix(seed ^ 0xA076_1D64_78BD_642F);
        let kind = StorageFaultKind::ALL[(s % StorageFaultKind::ALL.len() as u64) as usize];
        s = splitmix(s);
        let save = if saves == 0 { 0 } else { s % saves };
        let load = if loads == 0 { 0 } else { s % loads };
        s = splitmix(s);
        match kind {
            StorageFaultKind::TornWrite => Self::new().torn_write_at(save, s),
            StorageFaultKind::BitFlip => Self::new().bit_flip_at(save, s),
            StorageFaultKind::Enospc => Self::new().enospc_at(save),
            StorageFaultKind::CrashBeforeRename => Self::new().crash_before_rename_at(save),
            StorageFaultKind::StaleRead => Self::new().stale_reads_from(load),
        }
    }

    /// `keep` operand of a torn write scheduled for `save_index`.
    pub(crate) fn torn_for(&self, save_index: u64) -> Option<u64> {
        self.torn
            .iter()
            .find(|(i, _)| *i == save_index)
            .map(|(_, k)| *k)
    }

    /// Bit operand of a flip scheduled for `save_index`.
    pub(crate) fn flip_for(&self, save_index: u64) -> Option<u64> {
        self.flips
            .iter()
            .find(|(i, _)| *i == save_index)
            .map(|(_, b)| *b)
    }

    pub(crate) fn enospc_for(&self, save_index: u64) -> bool {
        self.enospc.contains(&save_index)
    }

    pub(crate) fn crash_for(&self, save_index: u64) -> bool {
        self.crash.contains(&save_index)
    }

    pub(crate) fn stale_for(&self, load_index: u64) -> bool {
        self.stale_at.contains(&load_index)
            || self.stale_from.is_some_and(|from| load_index >= from)
    }
}

/// Record that a storage fault actually fired: a `recover.storage_fault`
/// counter bump plus a flavor-tagged trace instant, mirroring how comm
/// chaos marks its injections (`comm.fault_drop` etc.).
pub(crate) fn record_injection(kind: StorageFaultKind) {
    lra_obs::metrics::global().inc_counter("recover.storage_fault", 1);
    match kind {
        StorageFaultKind::TornWrite => trace::instant("storage.fault_torn_write"),
        StorageFaultKind::BitFlip => trace::instant("storage.fault_bit_flip"),
        StorageFaultKind::Enospc => trace::instant("storage.fault_enospc"),
        StorageFaultKind::CrashBeforeRename => trace::instant("storage.fault_crash_before_rename"),
        StorageFaultKind::StaleRead => trace::instant("storage.fault_stale_read"),
    }
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chainable_constructors_index_by_site() {
        let p = StorageFaultPlan::new()
            .torn_write_at(1, 40)
            .bit_flip_at(2, 999)
            .enospc_at(3)
            .crash_before_rename_at(4)
            .stale_read_at(1)
            .stale_reads_from(7);
        assert_eq!(p.torn_for(1), Some(40));
        assert_eq!(p.torn_for(0), None);
        assert_eq!(p.flip_for(2), Some(999));
        assert!(p.enospc_for(3) && !p.enospc_for(1));
        assert!(p.crash_for(4));
        assert!(p.stale_for(1), "exact index");
        assert!(!p.stale_for(2), "below the sticky threshold");
        assert!(p.stale_for(7) && p.stale_for(12), "sticky from 7");
        assert!(!p.is_empty());
        assert!(StorageFaultPlan::new().is_empty());
    }

    #[test]
    fn seeded_plans_replay_and_vary() {
        let a = StorageFaultPlan::seeded(11, 6, 4);
        let b = StorageFaultPlan::seeded(11, 6, 4);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same plan");
        assert!(!a.is_empty());
        // Across a seed range, more than one flavor appears.
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..32u64 {
            let p = StorageFaultPlan::seeded(seed, 6, 4);
            distinct.insert(format!("{p:?}").split('{').next().unwrap().to_string());
            let _ = p; // shape sanity only
        }
        let flavors = (0..32u64)
            .map(|s| format!("{:?}", StorageFaultPlan::seeded(s, 6, 4)))
            .collect::<std::collections::HashSet<_>>();
        assert!(flavors.len() > 3, "seeds collapse to too few plans");
    }

    #[test]
    fn sticky_staleness_keeps_the_earliest_threshold() {
        let p = StorageFaultPlan::new().stale_reads_from(9).stale_reads_from(4);
        assert!(p.stale_for(4) && !p.stale_for(3));
    }
}
