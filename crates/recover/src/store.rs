//! Checkpoint persistence: checksummed generational envelopes.
//!
//! A [`Checkpoint`] is an algorithm-defined snapshot of iteration state
//! serialized through the `lra-obs` [`Json`] writer. Because that
//! writer prints finite `f64`s with Rust's shortest round-trip
//! formatting, a serialize → parse cycle is *bitwise exact* — resuming
//! from a checkpoint reproduces the uninterrupted run bit for bit (on
//! the same rank count; the reduction-tree shape depends on `np`). The
//! same property makes the envelope checksum *recomputable*: parsing a
//! stored document and re-printing its `state` yields the exact byte
//! string the CRC was computed over at save time.
//!
//! A [`CheckpointStore`] holds a short window of *generations* (default
//! [`DEFAULT_RETENTION`]) rather than a single latest snapshot. Each
//! save publishes envelope version [`CHECKPOINT_VERSION`]:
//!
//! ```json
//! {"kind":"lu_crtp","version":2,"generation":7,"iteration":7,
//!  "crc32":3735928559,"state":{...}}
//! ```
//!
//! where `crc32` covers every other envelope field plus the serialized
//! state (see the canonical byte string in `envelope_crc`). At load
//! time the store scans generations newest-first; a generation that is
//! torn, truncated, bit-flipped, or otherwise fails validation is
//! skipped with a [`RecoveryEvent::CorruptCheckpoint`] and the scan
//! *rolls back* to the next older generation
//! ([`RecoveryEvent::Rollback`]). Version-1 envelopes (no CRC, single
//! file at the base path) remain readable as the oldest generation.
//!
//! The on-disk variant is crash-safe: a save writes a unique
//! per-process temporary file, fsyncs it, atomically renames it to
//! `ckpt.<gen>.json`, and fsyncs the parent directory so the rename
//! itself survives power loss. Old generations beyond the retention
//! window are pruned after each successful publish.
//!
//! For fault-space exploration a store can carry a
//! [`StorageFaultPlan`](crate::StorageFaultPlan) injecting torn writes,
//! bit flips, ENOSPC, crash-before-rename, and stale reads at chosen
//! save/load indices — deterministic and replayable, mirroring
//! `lra-comm`'s chaos `FaultPlan`.

use crate::events::{record_event, RecoveryEvent};
use crate::fault::{record_injection, StorageFaultKind, StorageFaultPlan};
use lra_obs::crc::crc32;
use lra_obs::Json;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Envelope schema version for newly serialized checkpoints.
pub const CHECKPOINT_VERSION: u64 = 2;

/// How many generations a store keeps by default. Three survives the
/// worst single-fault case (newest torn by a crash mid-write, the one
/// before it suspect) with one known-good snapshot to spare.
pub const DEFAULT_RETENTION: usize = 3;

/// A resumable snapshot of an iteration-structured algorithm.
///
/// Implementations serialize their full loop state: everything needed
/// to continue from `iteration() + 1` as if the run had never stopped.
pub trait Checkpoint: Sized {
    /// Stable snapshot-kind discriminator (e.g. `"lu_crtp"`); a store
    /// refuses to load a snapshot of the wrong kind.
    const KIND: &'static str;

    /// The last completed iteration this snapshot covers (1-based).
    fn iteration(&self) -> usize;

    /// Serialize the loop state (without the envelope — the store adds
    /// `kind`/`version`/`generation`/`iteration`/`crc32` around it).
    fn state_to_json(&self) -> Json;

    /// Rebuild the loop state from [`Checkpoint::state_to_json`]'s
    /// output.
    fn state_from_json(state: &Json) -> Result<Self, String>;
}

enum Inner {
    /// Published generations, oldest first.
    Memory(Mutex<Vec<(u64, String)>>),
    /// Base path; generations live beside it as `<stem>.<gen>.<ext>`.
    Disk(PathBuf),
}

/// Generational persistence for one algorithm run's checkpoints.
pub struct CheckpointStore {
    inner: Inner,
    retention: usize,
    faults: StorageFaultPlan,
    saves: AtomicU64,
    loads: AtomicU64,
}

/// Why one generation failed to decode.
enum Decode {
    /// The stored bytes are damaged (torn, flipped, truncated,
    /// unparseable) — skip this generation and roll back.
    Corrupt(String),
    /// The document is intact but the caller asked for the wrong thing
    /// (kind mismatch) — a programming error, not storage damage.
    Hard(String),
}

impl CheckpointStore {
    /// A store living in this process's memory.
    pub fn in_memory() -> Self {
        CheckpointStore {
            inner: Inner::Memory(Mutex::new(Vec::new())),
            retention: DEFAULT_RETENTION,
            faults: StorageFaultPlan::new(),
            saves: AtomicU64::new(0),
            loads: AtomicU64::new(0),
        }
    }

    /// A store persisting generations beside `path`: a base path of
    /// `dir/ckpt.json` publishes `dir/ckpt.1.json`, `dir/ckpt.2.json`,
    /// … A legacy version-1 file at exactly `path` is still readable
    /// (as the oldest generation).
    pub fn on_disk(path: impl Into<PathBuf>) -> Self {
        CheckpointStore {
            inner: Inner::Disk(path.into()),
            retention: DEFAULT_RETENTION,
            faults: StorageFaultPlan::new(),
            saves: AtomicU64::new(0),
            loads: AtomicU64::new(0),
        }
    }

    /// Keep up to `n` generations (min 1) instead of
    /// [`DEFAULT_RETENTION`].
    pub fn with_retention(mut self, n: usize) -> Self {
        self.retention = n.max(1);
        self
    }

    /// Inject storage faults from `plan` (indexed by this store's save
    /// and load counters).
    pub fn with_faults(mut self, plan: StorageFaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Persist `ckpt` as a new generation and record a
    /// [`RecoveryEvent::Checkpoint`]. Fails on real I/O errors (and on
    /// injected ENOSPC); previously published generations are never
    /// touched by a failed save.
    pub fn save<C: Checkpoint>(&self, ckpt: &C) -> Result<(), String> {
        let save_index = self.saves.fetch_add(1, Ordering::Relaxed);
        if self.faults.enospc_for(save_index) {
            record_injection(StorageFaultKind::Enospc);
            return Err(format!(
                "checkpoint write (save #{save_index}): no space left on device [injected]"
            ));
        }

        let generation = self.next_generation()?;
        let state = ckpt.state_to_json();
        let state_text = state.to_string();
        let crc = envelope_crc(C::KIND, generation, ckpt.iteration() as u64, &state_text);
        let doc = Json::Obj(vec![
            ("kind".to_string(), Json::Str(C::KIND.to_string())),
            ("version".to_string(), Json::Num(CHECKPOINT_VERSION as f64)),
            ("generation".to_string(), Json::Num(generation as f64)),
            ("iteration".to_string(), Json::Num(ckpt.iteration() as f64)),
            ("crc32".to_string(), Json::Num(crc as f64)),
            ("state".to_string(), state),
        ]);
        let mut bytes = doc.to_string().into_bytes();

        if let Some(keep) = self.faults.torn_for(save_index) {
            record_injection(StorageFaultKind::TornWrite);
            bytes.truncate((keep % bytes.len().max(1) as u64) as usize);
        }
        if let Some(bit) = self.faults.flip_for(save_index) {
            if !bytes.is_empty() {
                record_injection(StorageFaultKind::BitFlip);
                let bit = bit % (bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
        }
        let crash = self.faults.crash_for(save_index);
        if crash {
            record_injection(StorageFaultKind::CrashBeforeRename);
        }

        match &self.inner {
            Inner::Memory(slot) => {
                if !crash {
                    let mut gens = slot.lock().unwrap_or_else(|p| p.into_inner());
                    gens.push((generation, String::from_utf8_lossy(&bytes).into_owned()));
                    let retain = self.retention;
                    while gens.len() > retain {
                        gens.remove(0);
                    }
                }
            }
            Inner::Disk(base) => {
                let target = generation_path(base, generation);
                let tmp = tmp_path(base, generation, save_index);
                write_synced(&tmp, &bytes)?;
                if crash {
                    // The "process" died after the tmp fsync but before
                    // the publish: the generation never becomes visible
                    // and the tmp file is stranded for `clear`.
                    record_event(&RecoveryEvent::Checkpoint {
                        kind: C::KIND,
                        iteration: ckpt.iteration(),
                    });
                    return Ok(());
                }
                std::fs::rename(&tmp, &target)
                    .map_err(|e| format!("checkpoint rename to {}: {e}", target.display()))?;
                sync_parent_dir(base);
                self.prune(base);
            }
        }

        record_event(&RecoveryEvent::Checkpoint {
            kind: C::KIND,
            iteration: ckpt.iteration(),
        });
        Ok(())
    }

    /// Load the most recent *valid* snapshot, scanning generations
    /// newest-first. Corrupt generations (torn, truncated, flipped,
    /// CRC-mismatched, unparseable state) are skipped with a
    /// [`RecoveryEvent::CorruptCheckpoint`]; succeeding on an older
    /// generation records a [`RecoveryEvent::Rollback`].
    ///
    /// Returns `Ok(None)` when no snapshot exists at all, and `Err` on
    /// a kind mismatch (caller bug), when every existing generation is
    /// corrupt, or on a real I/O failure (permissions, media errors —
    /// *not* "file not found", which is a normal fresh start).
    pub fn load<C: Checkpoint>(&self) -> Result<Option<C>, String> {
        let load_index = self.loads.fetch_add(1, Ordering::Relaxed);
        let mut candidates = self.candidates()?;
        if candidates.is_empty() {
            return Ok(None);
        }
        let newest = candidates[0].0;
        if self.faults.stale_for(load_index) {
            record_injection(StorageFaultKind::StaleRead);
            candidates.remove(0);
            if candidates.is_empty() {
                return Ok(None);
            }
        }

        let mut rolled_past = false;
        let mut last_reason = String::new();
        for (generation, text) in candidates {
            match decode::<C>(&text, generation) {
                Ok(ckpt) => {
                    if rolled_past {
                        record_event(&RecoveryEvent::Rollback {
                            from: newest,
                            to: generation,
                        });
                    }
                    return Ok(Some(ckpt));
                }
                Err(Decode::Corrupt(reason)) => {
                    record_event(&RecoveryEvent::CorruptCheckpoint {
                        generation,
                        reason: reason.clone(),
                    });
                    last_reason = reason;
                    rolled_past = true;
                }
                Err(Decode::Hard(e)) => return Err(e),
            }
        }
        Err(format!(
            "no valid checkpoint generation (newest was {newest}): {last_reason}"
        ))
    }

    /// Drop every stored generation, the legacy single-file snapshot,
    /// and any stranded temporary files (e.g. after a run completes, so
    /// a later run cannot accidentally resume stale state).
    pub fn clear(&self) {
        match &self.inner {
            Inner::Memory(slot) => {
                slot.lock().unwrap_or_else(|p| p.into_inner()).clear();
            }
            Inner::Disk(base) => {
                if let Ok(gens) = disk_generations(base) {
                    for (_, path) in gens {
                        let _ = std::fs::remove_file(path);
                    }
                }
                let _ = std::fs::remove_file(base);
                sweep_tmp_files(base);
            }
        }
    }

    /// Number of save calls issued through this store (the index space
    /// [`StorageFaultPlan`] save faults address).
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// Number of load calls issued through this store (the index space
    /// [`StorageFaultPlan`] stale reads address).
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Published generation numbers, oldest first (0 denotes a legacy
    /// single-file snapshot at the base path).
    pub fn generations(&self) -> Vec<u64> {
        match self.candidates() {
            Ok(mut c) => {
                c.reverse();
                c.into_iter().map(|(g, _)| g).collect()
            }
            Err(_) => Vec::new(),
        }
    }

    /// The serialized newest generation, if any. `Ok(None)` means no
    /// snapshot exists; `Err` is a real I/O failure.
    pub fn raw(&self) -> Result<Option<String>, String> {
        Ok(self.candidates()?.into_iter().next().map(|(_, t)| t))
    }

    /// Next generation number to publish (1 + the newest existing).
    fn next_generation(&self) -> Result<u64, String> {
        Ok(match &self.inner {
            Inner::Memory(slot) => slot
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .last()
                .map(|(g, _)| *g)
                .unwrap_or(0)
                + 1,
            // A legacy v1 file at the base path counts as generation 0,
            // so the first new publish is 1 either way.
            Inner::Disk(base) => {
                disk_generations(base)?.last().map(|(g, _)| *g).unwrap_or(0) + 1
            }
        })
    }

    /// All readable generations, newest first, as `(generation, text)`.
    fn candidates(&self) -> Result<Vec<(u64, String)>, String> {
        match &self.inner {
            Inner::Memory(slot) => {
                let gens = slot.lock().unwrap_or_else(|p| p.into_inner());
                Ok(gens.iter().rev().map(|(g, t)| (*g, t.clone())).collect())
            }
            Inner::Disk(base) => {
                let mut out = Vec::new();
                for (generation, path) in disk_generations(base)?.into_iter().rev() {
                    match std::fs::read(&path) {
                        // Damaged bytes must reach `decode` (which
                        // classifies them), so non-UTF-8 reads are
                        // lossy-converted rather than erroring here.
                        Ok(bytes) => {
                            out.push((generation, String::from_utf8_lossy(&bytes).into_owned()))
                        }
                        // Pruned between the scan and the read: not an
                        // error, just a generation that no longer
                        // exists.
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                        Err(e) => {
                            return Err(format!("checkpoint read {}: {e}", path.display()))
                        }
                    }
                }
                match std::fs::read(base) {
                    Ok(bytes) => out.push((0, String::from_utf8_lossy(&bytes).into_owned())),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(format!("checkpoint read {}: {e}", base.display())),
                }
                Ok(out)
            }
        }
    }

    /// Remove generations beyond the retention window (best-effort; a
    /// failed unlink only delays pruning to the next save).
    fn prune(&self, base: &Path) {
        if let Ok(gens) = disk_generations(base) {
            if gens.len() > self.retention {
                let excess = gens.len() - self.retention;
                for (_, path) in gens.into_iter().take(excess) {
                    let _ = std::fs::remove_file(path);
                }
                sync_parent_dir(base);
            }
        }
    }
}

/// The canonical byte string the envelope CRC covers. `\x00` cannot
/// appear in any field (kind is a Rust identifier-like literal, the
/// rest are decimal integers / JSON text), so the encoding is
/// unambiguous.
fn envelope_crc(kind: &str, generation: u64, iteration: u64, state_text: &str) -> u32 {
    crc32(
        format!("{kind}\x00{CHECKPOINT_VERSION}\x00{iteration}\x00{generation}\x00{state_text}")
            .as_bytes(),
    )
}

/// Decode one stored generation. `Corrupt` means "skip and roll back";
/// `Hard` means the document is fine but the caller is wrong.
fn decode<C: Checkpoint>(text: &str, generation: u64) -> Result<C, Decode> {
    let doc = Json::parse(text).map_err(|e| Decode::Corrupt(format!("parse: {e}")))?;
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| Decode::Corrupt("missing version".into()))?;
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| Decode::Corrupt("missing kind".into()))?;
    let state = doc
        .get("state")
        .ok_or_else(|| Decode::Corrupt("missing state".into()))?;

    match version {
        1 => {
            // Legacy envelope: no CRC, no generation field. Kind and
            // state are validated as before.
            if kind != C::KIND {
                return Err(Decode::Hard(format!(
                    "checkpoint kind mismatch: stored {kind:?}, expected {:?}",
                    C::KIND
                )));
            }
            C::state_from_json(state).map_err(Decode::Corrupt)
        }
        2 => {
            let stored_gen = doc
                .get("generation")
                .and_then(Json::as_u64)
                .ok_or_else(|| Decode::Corrupt("missing generation".into()))?;
            let iteration = doc
                .get("iteration")
                .and_then(Json::as_u64)
                .ok_or_else(|| Decode::Corrupt("missing iteration".into()))?;
            let stored_crc = doc
                .get("crc32")
                .and_then(Json::as_u64)
                .ok_or_else(|| Decode::Corrupt("missing crc32".into()))?;
            let computed = envelope_crc(kind, stored_gen, iteration, &state.to_string());
            if stored_crc != computed as u64 {
                return Err(Decode::Corrupt(format!(
                    "crc mismatch: stored {stored_crc}, computed {computed}"
                )));
            }
            // Generation 0 is the legacy base-path slot; a v2 document
            // found there is out of place and untrusted.
            if stored_gen != generation {
                return Err(Decode::Corrupt(format!(
                    "generation mismatch: envelope says {stored_gen}, slot is {generation}"
                )));
            }
            // The CRC covers the kind, so a mismatch here is a genuine
            // cross-load (caller bug), not bit rot.
            if kind != C::KIND {
                return Err(Decode::Hard(format!(
                    "checkpoint kind mismatch: stored {kind:?}, expected {:?}",
                    C::KIND
                )));
            }
            C::state_from_json(state).map_err(Decode::Corrupt)
        }
        v => Err(Decode::Corrupt(format!(
            "unsupported checkpoint version {v} (supported: 1, {CHECKPOINT_VERSION})"
        ))),
    }
}

/// `dir/ckpt.json` → `dir/ckpt.<gen>.json`; extensionless bases get
/// `dir/ckpt.<gen>`.
fn generation_path(base: &Path, generation: u64) -> PathBuf {
    let (stem, ext) = split_name(base);
    let name = match ext {
        Some(ext) => format!("{stem}.{generation}.{ext}"),
        None => format!("{stem}.{generation}"),
    };
    base.with_file_name(name)
}

/// Unique per-process temporary name: hidden (never matches the
/// generation scan), disambiguated by pid and a process-wide sequence
/// number so concurrent stores — even two stores on the *same* base
/// path — never collide, and multi-dot base names survive intact.
fn tmp_path(base: &Path, generation: u64, save_index: u64) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let file = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "ckpt".to_string());
    let pid = std::process::id();
    base.with_file_name(format!(".{file}.{generation}.{pid}-{seq}-{save_index}.tmp"))
}

/// Split a base file name at its last dot: `ckpt.v2.json` → (`ckpt.v2`,
/// `json`). (The old `Path::with_extension` approach collapsed this to
/// `ckpt.tmp`, colliding across stores and mangling multi-dot names.)
fn split_name(base: &Path) -> (String, Option<String>) {
    let name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "ckpt".to_string());
    match name.rfind('.') {
        Some(i) if i > 0 => (name[..i].to_string(), Some(name[i + 1..].to_string())),
        _ => (name, None),
    }
}

fn parent_dir(base: &Path) -> PathBuf {
    match base.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// Enumerate generation files beside `base`, oldest first. A missing
/// parent directory is an empty store; any other directory-scan failure
/// is a real I/O error.
fn disk_generations(base: &Path) -> Result<Vec<(u64, PathBuf)>, String> {
    let dir = parent_dir(base);
    let (stem, ext) = split_name(base);
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("checkpoint scan {}: {e}", dir.display())),
    };
    let prefix = format!("{stem}.");
    let suffix = ext.map(|e| format!(".{e}")).unwrap_or_default();
    let mut gens = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(middle) = name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(&suffix))
        else {
            continue;
        };
        if let Ok(generation) = middle.parse::<u64>() {
            gens.push((generation, dir.join(name)));
        }
    }
    gens.sort_unstable_by_key(|(g, _)| *g);
    Ok(gens)
}

/// Remove stranded `.{name}.*.tmp` files for `base` (crashed saves).
fn sweep_tmp_files(base: &Path) {
    let dir = parent_dir(base);
    let file = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "ckpt".to_string());
    let prefix = format!(".{file}.");
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(&prefix) && name.ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// Write `bytes` to `path` and fsync the file, so the rename that
/// follows publishes fully-persisted data.
fn write_synced(path: &Path, bytes: &[u8]) -> Result<(), String> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)
        .map_err(|e| format!("checkpoint write {}: {e}", path.display()))?;
    f.write_all(bytes)
        .map_err(|e| format!("checkpoint write {}: {e}", path.display()))?;
    f.sync_all()
        .map_err(|e| format!("checkpoint fsync {}: {e}", path.display()))?;
    Ok(())
}

/// Fsync the directory containing `base` so a just-published rename
/// survives power loss. Best-effort: not every filesystem supports
/// directory fsync, and a failure here only weakens durability, never
/// correctness.
fn sync_parent_dir(base: &Path) {
    if let Ok(dir) = std::fs::File::open(parent_dir(base)) {
        let _ = dir.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lra_obs::MetricValue;

    fn counter(name: &str) -> u64 {
        match lra_obs::metrics::global().get(name) {
            Some(MetricValue::Counter(c)) => c,
            _ => 0,
        }
    }

    #[derive(Debug)]
    struct Toy {
        it: usize,
        xs: Vec<f64>,
    }

    impl Checkpoint for Toy {
        const KIND: &'static str = "toy";

        fn iteration(&self) -> usize {
            self.it
        }

        fn state_to_json(&self) -> Json {
            Json::Obj(vec![(
                "xs".to_string(),
                Json::Arr(self.xs.iter().map(|&x| Json::Num(x)).collect()),
            )])
        }

        fn state_from_json(state: &Json) -> Result<Self, String> {
            let xs = state
                .get("xs")
                .and_then(Json::as_arr)
                .ok_or("missing xs")?
                .iter()
                .map(|v| v.as_f64().ok_or("non-number"))
                .collect::<Result<Vec<f64>, _>>()?;
            Ok(Toy { it: 0, xs })
        }
    }

    #[derive(Debug)]
    struct OtherKind;

    impl Checkpoint for OtherKind {
        const KIND: &'static str = "other";

        fn iteration(&self) -> usize {
            0
        }

        fn state_to_json(&self) -> Json {
            Json::Null
        }

        fn state_from_json(_: &Json) -> Result<Self, String> {
            Ok(OtherKind)
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lra_recover_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn memory_roundtrip_is_bitwise() {
        let store = CheckpointStore::in_memory();
        assert!(store.load::<Toy>().unwrap().is_none());
        // Values chosen to stress float printing (subnormal, huge,
        // non-terminating binary fractions).
        let xs = vec![0.1, -3.5e300, f64::MIN_POSITIVE, 1.0 / 3.0, -0.0];
        store.save(&Toy { it: 7, xs: xs.clone() }).unwrap();
        let back = store.load::<Toy>().unwrap().unwrap();
        for (a, b) in xs.iter().zip(&back.xs) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        assert_eq!(store.saves(), 1);
        store.clear();
        assert!(store.load::<Toy>().unwrap().is_none());
    }

    #[test]
    fn latest_snapshot_wins() {
        let store = CheckpointStore::in_memory();
        store.save(&Toy { it: 1, xs: vec![1.0] }).unwrap();
        store.save(&Toy { it: 2, xs: vec![2.0] }).unwrap();
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![2.0]);
        assert_eq!(store.saves(), 2);
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let store = CheckpointStore::in_memory();
        store.save(&Toy { it: 1, xs: vec![] }).unwrap();
        let err = store.load::<OtherKind>().unwrap_err();
        assert!(err.contains("kind mismatch"), "{err}");
    }

    #[test]
    fn disk_store_roundtrips_and_clears() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("ckpt.json");
        let store = CheckpointStore::on_disk(&path);
        assert!(store.load::<Toy>().unwrap().is_none());
        store.save(&Toy { it: 3, xs: vec![0.25, 9.0] }).unwrap();
        let back = store.load::<Toy>().unwrap().unwrap();
        assert_eq!(back.xs, vec![0.25, 9.0]);
        store.clear();
        assert!(store.load::<Toy>().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_window_prunes_old_generations() {
        let dir = temp_dir("retention");
        let path = dir.join("ckpt.json");
        let store = CheckpointStore::on_disk(&path).with_retention(3);
        for it in 1..=5 {
            store.save(&Toy { it, xs: vec![it as f64] }).unwrap();
        }
        assert_eq!(store.generations(), vec![3, 4, 5]);
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![5.0]);
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 3, "pruned to the retention window");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_generation_rolls_back() {
        let dir = temp_dir("rollback");
        let path = dir.join("ckpt.json");
        let store = CheckpointStore::on_disk(&path);
        store.save(&Toy { it: 1, xs: vec![1.5] }).unwrap();
        store.save(&Toy { it: 2, xs: vec![2.5] }).unwrap();
        // Truncate generation 2 mid-envelope (a torn write at the
        // filesystem level, outside any fault plan).
        let g2 = generation_path(&path, 2);
        let text = std::fs::read_to_string(&g2).unwrap();
        std::fs::write(&g2, &text[..text.len() / 2]).unwrap();

        let corrupt0 = counter("recover.corrupt_checkpoint");
        let rollback0 = counter("recover.rollback");
        let back = store.load::<Toy>().unwrap().unwrap();
        assert_eq!(back.xs, vec![1.5], "rolled back to generation 1");
        assert_eq!(counter("recover.corrupt_checkpoint"), corrupt0 + 1);
        assert_eq!(counter("recover.rollback"), rollback0 + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_caught_by_the_crc() {
        let dir = temp_dir("bitflip");
        let path = dir.join("ckpt.json");
        let store = CheckpointStore::on_disk(&path);
        store.save(&Toy { it: 1, xs: vec![1.0] }).unwrap();
        store.save(&Toy { it: 2, xs: vec![2.0] }).unwrap();
        // Flip one bit inside generation 2's state payload: the JSON
        // may still parse, but the CRC must reject it.
        let g2 = generation_path(&path, 2);
        let mut bytes = std::fs::read(&g2).unwrap();
        let pos = bytes.len() - 4; // inside "2]}" tail digits
        bytes[pos] ^= 0x01;
        std::fs::write(&g2, &bytes).unwrap();
        let back = store.load::<Toy>().unwrap().unwrap();
        assert_eq!(back.xs, vec![1.0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_generations_corrupt_is_a_typed_error() {
        let store = CheckpointStore::in_memory();
        // An inconsistent state (missing xs) decodes as Corrupt; with
        // no older generation to fall back to, load must surface the
        // reason, not panic or silently return None.
        let slot = match &store.inner {
            Inner::Memory(m) => m,
            _ => unreachable!(),
        };
        let state_text = r#"{"nope":true}"#.to_string();
        let crc = envelope_crc("toy", 1, 4, &state_text);
        slot.lock().unwrap().push((
            1,
            format!(
                r#"{{"kind":"toy","version":2,"generation":1,"iteration":4,"crc32":{crc},"state":{state_text}}}"#
            ),
        ));
        let err = store.load::<Toy>().unwrap_err();
        assert!(err.contains("missing xs"), "{err}");
    }

    #[test]
    fn legacy_v1_envelope_still_loads() {
        let dir = temp_dir("legacy");
        let path = dir.join("ckpt.json");
        std::fs::write(
            &path,
            r#"{"kind":"toy","version":1,"iteration":5,"state":{"xs":[7.25]}}"#,
        )
        .unwrap();
        let store = CheckpointStore::on_disk(&path);
        let back = store.load::<Toy>().unwrap().unwrap();
        assert_eq!(back.xs, vec![7.25]);
        // New saves publish v2 generations that shadow the legacy file.
        store.save(&Toy { it: 6, xs: vec![8.0] }).unwrap();
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![8.0]);
        assert_eq!(store.generations(), vec![0, 1]);
        store.clear();
        assert!(store.load::<Toy>().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn real_io_errors_surface_instead_of_fresh_start() {
        let dir = temp_dir("ioerr");
        let path = dir.join("ckpt.json");
        let store = CheckpointStore::on_disk(&path);
        store.save(&Toy { it: 1, xs: vec![1.0] }).unwrap();
        // Replace generation 1 with a *directory*: reading it fails
        // with a real I/O error (EISDIR), which must become Err — a
        // silent fresh start here would drop committed work.
        let g1 = generation_path(&path, 1);
        std::fs::remove_file(&g1).unwrap();
        std::fs::create_dir(&g1).unwrap();
        let err = store.load::<Toy>().unwrap_err();
        assert!(err.contains("checkpoint read"), "{err}");
        assert!(store.raw().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_dot_base_names_do_not_collide() {
        let dir = temp_dir("multidot");
        let a = CheckpointStore::on_disk(dir.join("a.json"));
        let b = CheckpointStore::on_disk(dir.join("a.b.json"));
        a.save(&Toy { it: 1, xs: vec![1.0] }).unwrap();
        b.save(&Toy { it: 1, xs: vec![-1.0] }).unwrap();
        a.save(&Toy { it: 2, xs: vec![2.0] }).unwrap();
        b.save(&Toy { it: 2, xs: vec![-2.0] }).unwrap();
        assert_eq!(a.load::<Toy>().unwrap().unwrap().xs, vec![2.0]);
        assert_eq!(b.load::<Toy>().unwrap().unwrap().xs, vec![-2.0]);
        assert_eq!(a.generations(), vec![1, 2], "b's files are not a's");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_enospc_fails_the_save_and_preserves_history() {
        let store = CheckpointStore::in_memory()
            .with_faults(StorageFaultPlan::new().enospc_at(1));
        store.save(&Toy { it: 1, xs: vec![1.0] }).unwrap();
        let err = store.save(&Toy { it: 2, xs: vec![2.0] }).unwrap_err();
        assert!(err.contains("no space left"), "{err}");
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![1.0]);
        // The counter advanced past the failed save; the next save works.
        store.save(&Toy { it: 3, xs: vec![3.0] }).unwrap();
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![3.0]);
    }

    #[test]
    fn injected_torn_write_rolls_back_at_load() {
        let store = CheckpointStore::in_memory()
            .with_faults(StorageFaultPlan::new().torn_write_at(1, 30));
        store.save(&Toy { it: 1, xs: vec![1.0] }).unwrap();
        store.save(&Toy { it: 2, xs: vec![2.0] }).unwrap();
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![1.0]);
    }

    #[test]
    fn injected_crash_before_rename_strands_a_tmp_file() {
        let dir = temp_dir("crash");
        let path = dir.join("ckpt.json");
        let store = CheckpointStore::on_disk(&path)
            .with_faults(StorageFaultPlan::new().crash_before_rename_at(1));
        store.save(&Toy { it: 1, xs: vec![1.0] }).unwrap();
        store.save(&Toy { it: 2, xs: vec![2.0] }).unwrap(); // "crashes"
        assert_eq!(store.generations(), vec![1], "generation 2 never published");
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![1.0]);
        let tmps = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(tmps, 1, "the crashed save's tmp file is stranded");
        store.clear();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0, "clear sweeps tmps");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_stale_read_serves_the_previous_generation() {
        let store = CheckpointStore::in_memory()
            .with_faults(StorageFaultPlan::new().stale_read_at(1));
        store.save(&Toy { it: 1, xs: vec![1.0] }).unwrap();
        store.save(&Toy { it: 2, xs: vec![2.0] }).unwrap();
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![2.0]);
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![1.0], "load #1 is stale");
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![2.0]);
        assert_eq!(store.loads(), 3);
    }
}
