//! Checkpoint persistence.
//!
//! A [`Checkpoint`] is an algorithm-defined snapshot of iteration state
//! serialized through the `lra-obs` [`Json`] writer. Because that
//! writer prints finite `f64`s with Rust's shortest round-trip
//! formatting, a serialize → parse cycle is *bitwise exact* — resuming
//! from a checkpoint reproduces the uninterrupted run bit for bit (on
//! the same rank count; the reduction-tree shape depends on `np`).
//!
//! A [`CheckpointStore`] holds the *latest* snapshot — iteration
//! checkpointing is a sliding window of one, because resuming always
//! wants the most recent consistent state. The in-memory variant backs
//! supervisors inside one process; the on-disk variant (atomic
//! write-then-rename) survives the process for operational restarts.

use crate::events::{record_event, RecoveryEvent};
use lra_obs::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Envelope schema version for serialized checkpoints.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A resumable snapshot of an iteration-structured algorithm.
///
/// Implementations serialize their full loop state: everything needed
/// to continue from `iteration() + 1` as if the run had never stopped.
pub trait Checkpoint: Sized {
    /// Stable snapshot-kind discriminator (e.g. `"lu_crtp"`); a store
    /// refuses to load a snapshot of the wrong kind.
    const KIND: &'static str;

    /// The last completed iteration this snapshot covers (1-based).
    fn iteration(&self) -> usize;

    /// Serialize the loop state (without the envelope — the store adds
    /// `kind`/`version`/`iteration` around it).
    fn state_to_json(&self) -> Json;

    /// Rebuild the loop state from [`Checkpoint::state_to_json`]'s
    /// output.
    fn state_from_json(state: &Json) -> Result<Self, String>;
}

enum Inner {
    Memory(Mutex<Option<String>>),
    Disk(PathBuf),
}

/// Latest-wins persistence for one algorithm run's checkpoints.
pub struct CheckpointStore {
    inner: Inner,
    saves: AtomicU64,
}

impl CheckpointStore {
    /// A store living in this process's memory.
    pub fn in_memory() -> Self {
        CheckpointStore {
            inner: Inner::Memory(Mutex::new(None)),
            saves: AtomicU64::new(0),
        }
    }

    /// A store persisting to `path` (atomic replace via a sibling
    /// temporary file, so a crash mid-save never corrupts the previous
    /// snapshot).
    pub fn on_disk(path: impl Into<PathBuf>) -> Self {
        CheckpointStore {
            inner: Inner::Disk(path.into()),
            saves: AtomicU64::new(0),
        }
    }

    /// Persist `ckpt`, replacing any previous snapshot, and record a
    /// [`RecoveryEvent::Checkpoint`].
    pub fn save<C: Checkpoint>(&self, ckpt: &C) -> Result<(), String> {
        let doc = Json::Obj(vec![
            ("kind".to_string(), Json::Str(C::KIND.to_string())),
            ("version".to_string(), Json::Num(CHECKPOINT_VERSION as f64)),
            ("iteration".to_string(), Json::Num(ckpt.iteration() as f64)),
            ("state".to_string(), ckpt.state_to_json()),
        ]);
        let text = doc.to_string();
        match &self.inner {
            Inner::Memory(slot) => {
                *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(text);
            }
            Inner::Disk(path) => {
                let tmp = path.with_extension("tmp");
                std::fs::write(&tmp, &text)
                    .map_err(|e| format!("checkpoint write {}: {e}", tmp.display()))?;
                std::fs::rename(&tmp, path)
                    .map_err(|e| format!("checkpoint rename to {}: {e}", path.display()))?;
            }
        }
        self.saves.fetch_add(1, Ordering::Relaxed);
        record_event(&RecoveryEvent::Checkpoint {
            kind: C::KIND,
            iteration: ckpt.iteration(),
        });
        Ok(())
    }

    /// Load the latest snapshot, if any. Fails on a malformed document,
    /// a kind mismatch, or an unknown envelope version.
    pub fn load<C: Checkpoint>(&self) -> Result<Option<C>, String> {
        let Some(text) = self.raw() else {
            return Ok(None);
        };
        let doc = Json::parse(&text).map_err(|e| format!("checkpoint parse: {e}"))?;
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("checkpoint missing kind")?;
        if kind != C::KIND {
            return Err(format!(
                "checkpoint kind mismatch: stored {kind:?}, expected {:?}",
                C::KIND
            ));
        }
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("checkpoint missing version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (supported: {CHECKPOINT_VERSION})"
            ));
        }
        let state = doc.get("state").ok_or("checkpoint missing state")?;
        C::state_from_json(state).map(Some)
    }

    /// Drop the stored snapshot (e.g. after a run completes, so a later
    /// run cannot accidentally resume stale state).
    pub fn clear(&self) {
        match &self.inner {
            Inner::Memory(slot) => {
                *slot.lock().unwrap_or_else(|p| p.into_inner()) = None;
            }
            Inner::Disk(path) => {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    /// Number of snapshots saved through this store.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// The serialized latest snapshot, if any.
    pub fn raw(&self) -> Option<String> {
        match &self.inner {
            Inner::Memory(slot) => slot.lock().unwrap_or_else(|p| p.into_inner()).clone(),
            Inner::Disk(path) => std::fs::read_to_string(path).ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        it: usize,
        xs: Vec<f64>,
    }

    impl Checkpoint for Toy {
        const KIND: &'static str = "toy";

        fn iteration(&self) -> usize {
            self.it
        }

        fn state_to_json(&self) -> Json {
            Json::Obj(vec![(
                "xs".to_string(),
                Json::Arr(self.xs.iter().map(|&x| Json::Num(x)).collect()),
            )])
        }

        fn state_from_json(state: &Json) -> Result<Self, String> {
            let xs = state
                .get("xs")
                .and_then(Json::as_arr)
                .ok_or("missing xs")?
                .iter()
                .map(|v| v.as_f64().ok_or("non-number"))
                .collect::<Result<Vec<f64>, _>>()?;
            Ok(Toy { it: 0, xs })
        }
    }

    #[derive(Debug)]
    struct OtherKind;

    impl Checkpoint for OtherKind {
        const KIND: &'static str = "other";

        fn iteration(&self) -> usize {
            0
        }

        fn state_to_json(&self) -> Json {
            Json::Null
        }

        fn state_from_json(_: &Json) -> Result<Self, String> {
            Ok(OtherKind)
        }
    }

    #[test]
    fn memory_roundtrip_is_bitwise() {
        let store = CheckpointStore::in_memory();
        assert!(store.load::<Toy>().unwrap().is_none());
        // Values chosen to stress float printing (subnormal, huge,
        // non-terminating binary fractions).
        let xs = vec![0.1, -3.5e300, f64::MIN_POSITIVE, 1.0 / 3.0, -0.0];
        store.save(&Toy { it: 7, xs: xs.clone() }).unwrap();
        let back = store.load::<Toy>().unwrap().unwrap();
        for (a, b) in xs.iter().zip(&back.xs) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        assert_eq!(store.saves(), 1);
        store.clear();
        assert!(store.load::<Toy>().unwrap().is_none());
    }

    #[test]
    fn latest_snapshot_wins() {
        let store = CheckpointStore::in_memory();
        store.save(&Toy { it: 1, xs: vec![1.0] }).unwrap();
        store.save(&Toy { it: 2, xs: vec![2.0] }).unwrap();
        assert_eq!(store.load::<Toy>().unwrap().unwrap().xs, vec![2.0]);
        assert_eq!(store.saves(), 2);
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let store = CheckpointStore::in_memory();
        store.save(&Toy { it: 1, xs: vec![] }).unwrap();
        let err = store.load::<OtherKind>().unwrap_err();
        assert!(err.contains("kind mismatch"), "{err}");
    }

    #[test]
    fn disk_store_roundtrips_and_clears() {
        let dir = std::env::temp_dir().join(format!(
            "lra_recover_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let store = CheckpointStore::on_disk(&path);
        assert!(store.load::<Toy>().unwrap().is_none());
        store.save(&Toy { it: 3, xs: vec![0.25, 9.0] }).unwrap();
        let back = store.load::<Toy>().unwrap().unwrap();
        assert_eq!(back.xs, vec![0.25, 9.0]);
        store.clear();
        assert!(store.load::<Toy>().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
