//! Cooperative cancellation and resource budgets.
//!
//! The fixed-precision loops monitor an error indicator every
//! iteration, so a run stopped early is not a failure — it is a valid
//! lower-accuracy approximation with a *known* achieved tolerance. This
//! module supplies the vocabulary for stopping early on purpose:
//!
//! - [`CancelToken`] — a shared atomic flag any thread can set; the
//!   drivers poll it at panel boundaries.
//! - [`Budget`] — declarative resource limits (wall-clock deadline,
//!   iteration cap, per-rank memory ceiling) plus any number of cancel
//!   tokens. [`Budget::start`] captures the entry instant and yields a
//!   [`BudgetClock`] the iteration loop checks.
//! - [`BudgetTrip`] — the typed verdict of a check, with a stable
//!   priority order and a fixed-width wire encoding so an SPMD rank
//!   group can allreduce the verdicts and *agree* on a single trip at
//!   the same iteration (the same discipline as poison broadcast:
//!   never desync the group).
//! - [`DeadlineGuard`] — a timer thread that cancels a token when a
//!   deadline elapses, giving [`crate::run_supervised`] mid-attempt
//!   deadline enforcement through the same token the drivers poll.
//!
//! Checks are *cooperative*: a trip is only observed at the loop
//! boundaries the drivers instrument, which is exactly what makes the
//! partial result consistent (maps updated, Schur complement current,
//! checkpoint saveable) and the resumed run bitwise-reproducible.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A shared cancellation flag.
///
/// Cloning yields another handle to the *same* flag. Once cancelled it
/// stays cancelled; tokens are one-shot by design so a trip observed at
/// one boundary cannot un-happen before the next.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has [`CancelToken::cancel`] been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// Why a budgeted run stopped early.
///
/// Variants are listed in *priority order*: when several limits trip at
/// the same boundary (or on different ranks of the same SPMD group),
/// the highest-priority verdict wins, so every rank reports the same
/// reason.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetTrip {
    /// A [`CancelToken`] attached to the budget was cancelled.
    Cancelled,
    /// The wall-clock deadline elapsed.
    DeadlineExceeded {
        /// Time elapsed since [`Budget::start`] when the check fired.
        elapsed: Duration,
        /// The configured deadline.
        deadline: Duration,
    },
    /// Resident factorization state exceeded the per-rank ceiling.
    MemoryCeiling {
        /// Observed per-rank resident bytes (group max under SPMD).
        observed_bytes: u64,
        /// The configured ceiling.
        ceiling_bytes: u64,
    },
    /// The iteration cap was reached.
    IterationCap {
        /// Completed iterations when the check fired.
        iterations: u64,
        /// The configured cap.
        cap: u64,
    },
}

impl BudgetTrip {
    /// Stable short label ("cancel", "deadline", "memory",
    /// "iteration_cap") for metrics and site tables.
    pub fn label(&self) -> &'static str {
        match self {
            BudgetTrip::Cancelled => "cancel",
            BudgetTrip::DeadlineExceeded { .. } => "deadline",
            BudgetTrip::MemoryCeiling { .. } => "memory",
            BudgetTrip::IterationCap { .. } => "iteration_cap",
        }
    }

    /// Fixed-width wire encoding `(kind, a, b)` for SPMD agreement.
    /// `kind` is the priority (0 = highest); durations travel as
    /// microseconds.
    pub fn to_wire(&self) -> (u8, u64, u64) {
        match *self {
            BudgetTrip::Cancelled => (0, 0, 0),
            BudgetTrip::DeadlineExceeded { elapsed, deadline } => {
                (1, elapsed.as_micros() as u64, deadline.as_micros() as u64)
            }
            BudgetTrip::MemoryCeiling {
                observed_bytes,
                ceiling_bytes,
            } => (2, observed_bytes, ceiling_bytes),
            BudgetTrip::IterationCap { iterations, cap } => (3, iterations, cap),
        }
    }

    /// Decode [`BudgetTrip::to_wire`]. Unknown kinds are `None`.
    pub fn from_wire(kind: u8, a: u64, b: u64) -> Option<BudgetTrip> {
        match kind {
            0 => Some(BudgetTrip::Cancelled),
            1 => Some(BudgetTrip::DeadlineExceeded {
                elapsed: Duration::from_micros(a),
                deadline: Duration::from_micros(b),
            }),
            2 => Some(BudgetTrip::MemoryCeiling {
                observed_bytes: a,
                ceiling_bytes: b,
            }),
            3 => Some(BudgetTrip::IterationCap {
                iterations: a,
                cap: b,
            }),
            _ => None,
        }
    }

    /// Associative, commutative combiner for wire-encoded verdicts:
    /// the smaller kind (higher priority) wins; equal kinds merge by
    /// elementwise max, so e.g. the group-wide memory verdict reports
    /// the *largest* offending rank. Reducing every rank's optional
    /// verdict with this yields the same agreed trip on all ranks.
    pub fn merge_wire(x: (u8, u64, u64), y: (u8, u64, u64)) -> (u8, u64, u64) {
        match x.0.cmp(&y.0) {
            std::cmp::Ordering::Less => x,
            std::cmp::Ordering::Greater => y,
            std::cmp::Ordering::Equal => (x.0, x.1.max(y.1), x.2.max(y.2)),
        }
    }
}

impl fmt::Display for BudgetTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetTrip::Cancelled => write!(f, "cancelled via token"),
            BudgetTrip::DeadlineExceeded { elapsed, deadline } => write!(
                f,
                "deadline exceeded ({:.3}s elapsed of {:.3}s)",
                elapsed.as_secs_f64(),
                deadline.as_secs_f64()
            ),
            BudgetTrip::MemoryCeiling {
                observed_bytes,
                ceiling_bytes,
            } => write!(
                f,
                "memory ceiling exceeded ({observed_bytes} B resident, ceiling {ceiling_bytes} B)"
            ),
            BudgetTrip::IterationCap { iterations, cap } => {
                write!(f, "iteration cap reached ({iterations} of {cap})")
            }
        }
    }
}

/// Declarative resource limits for one driver invocation.
///
/// The default budget is unlimited; every limit is opt-in. Cloning a
/// budget shares its cancel tokens (they are handles to shared flags).
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock limit measured from [`Budget::start`].
    pub deadline: Option<Duration>,
    /// Maximum completed iterations (panels for LU_CRTP/ILUT, block
    /// steps for RandQB_EI/RandUBV).
    pub max_iterations: Option<u64>,
    /// Per-rank resident-bytes ceiling, checked against the same
    /// quantity `MemStats::peak_rank_bytes` reports.
    pub memory_ceiling_bytes: Option<u64>,
    /// External cancellation: the budget trips when *any* token fires.
    pub cancel: Vec<CancelToken>,
}

impl Budget {
    /// An unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when no limit or token is attached — drivers skip the
    /// per-iteration check (and the SPMD agreement collective) entirely.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_iterations.is_none()
            && self.memory_ceiling_bytes.is_none()
            && self.cancel.is_empty()
    }

    /// Set [`Budget::deadline`].
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set [`Budget::max_iterations`].
    pub fn with_iteration_cap(mut self, cap: u64) -> Self {
        self.max_iterations = Some(cap);
        self
    }

    /// Set [`Budget::memory_ceiling_bytes`].
    pub fn with_memory_ceiling(mut self, bytes: u64) -> Self {
        self.memory_ceiling_bytes = Some(bytes);
        self
    }

    /// Attach a [`CancelToken`] (in addition to any already attached).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel.push(token);
        self
    }

    /// Capture the entry instant and start the clock the iteration
    /// loop checks.
    pub fn start(&self) -> BudgetClock {
        BudgetClock {
            budget: self.clone(),
            started: Instant::now(),
        }
    }
}

/// A started [`Budget`]: the entry instant plus the limits.
#[derive(Debug, Clone)]
pub struct BudgetClock {
    budget: Budget,
    started: Instant,
}

impl BudgetClock {
    /// See [`Budget::is_unlimited`].
    pub fn is_unlimited(&self) -> bool {
        self.budget.is_unlimited()
    }

    /// Evaluate every limit against the current state. `iterations` is
    /// the count of *completed* iterations; `resident_bytes` is this
    /// rank's resident factorization state. Returns the
    /// highest-priority trip, or `None` when the run may continue.
    pub fn check(&self, iterations: u64, resident_bytes: u64) -> Option<BudgetTrip> {
        if self.budget.cancel.iter().any(CancelToken::is_cancelled) {
            return Some(BudgetTrip::Cancelled);
        }
        if let Some(deadline) = self.budget.deadline {
            let elapsed = self.started.elapsed();
            if elapsed >= deadline {
                return Some(BudgetTrip::DeadlineExceeded { elapsed, deadline });
            }
        }
        if let Some(ceiling_bytes) = self.budget.memory_ceiling_bytes {
            if resident_bytes > ceiling_bytes {
                return Some(BudgetTrip::MemoryCeiling {
                    observed_bytes: resident_bytes,
                    ceiling_bytes,
                });
            }
        }
        if let Some(cap) = self.budget.max_iterations {
            if iterations >= cap {
                return Some(BudgetTrip::IterationCap { iterations, cap });
            }
        }
        None
    }

    /// Wall time left before the deadline (`None` when no deadline is
    /// set; zero once it has passed).
    pub fn remaining_deadline(&self) -> Option<Duration> {
        self.budget
            .deadline
            .map(|d| d.saturating_sub(self.started.elapsed()))
    }
}

/// A timer thread that fires a [`CancelToken`] when a deadline elapses.
///
/// Disarming the guard — explicitly via [`DeadlineGuard::disarm`] or
/// implicitly on drop — wakes, stops, **and joins** the watcher thread,
/// so a run (or a served job) that finishes before its deadline leaves
/// nothing behind: no timer thread parked until the stale deadline, no
/// late cancel of a token that may since have been re-attached to other
/// work. A job engine arming one guard per admitted job can therefore
/// churn through thousands of short jobs without accumulating watcher
/// threads (pinned by the `many_short_guards_leak_no_threads`
/// regression test).
///
/// This is how [`crate::run_supervised`] turns
/// `RecoveryPolicy::deadline` into *mid-attempt* enforcement: the token
/// rides into the drivers through their [`Budget`], and the drivers
/// stop cooperatively at the next panel boundary instead of running to
/// completion.
pub struct DeadlineGuard {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl DeadlineGuard {
    /// Cancel `token` once `after` has elapsed (unless disarmed first).
    pub fn arm(token: CancelToken, after: Duration) -> Self {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("lra-deadline-guard".into())
            .spawn(move || {
                let (lock, cv) = &*thread_state;
                // Saturate far-future deadlines instead of overflowing
                // `Instant` arithmetic: a guard armed with an absurd
                // duration simply waits until disarmed.
                let deadline = Instant::now().checked_add(after);
                let mut disarmed = lock.lock().unwrap();
                loop {
                    if *disarmed {
                        return;
                    }
                    let now = Instant::now();
                    let remaining = match deadline {
                        Some(d) if now >= d => {
                            token.cancel();
                            return;
                        }
                        Some(d) => d - now,
                        None => Duration::from_secs(86_400),
                    };
                    let (guard, _) = cv.wait_timeout(disarmed, remaining).unwrap();
                    disarmed = guard;
                }
            })
            .expect("spawn deadline-guard thread");
        DeadlineGuard {
            state,
            handle: Some(handle),
        }
    }

    /// Explicitly stop the watcher and join its thread *now*. Call this
    /// the moment the guarded work completes: the guard object may be
    /// parked in a job table whose entry lives on long after the job
    /// finished, and a merely-forgotten watcher would otherwise sleep
    /// until the stale deadline (or fire a token that has been reused).
    /// Disarming is idempotent with drop — a disarmed guard's drop is a
    /// no-op join of nothing.
    pub fn disarm(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cv) = &*self.state;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for DeadlineGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeadlineGuard").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let clock = Budget::unlimited().start();
        assert!(clock.is_unlimited());
        assert_eq!(clock.check(u64::MAX, u64::MAX), None);
        assert_eq!(clock.remaining_deadline(), None);
    }

    #[test]
    fn token_cancel_is_shared_and_sticky() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        let clock = Budget::unlimited().with_cancel(clone).start();
        assert_eq!(clock.check(0, 0), Some(BudgetTrip::Cancelled));
    }

    #[test]
    fn iteration_cap_and_memory_ceiling_trip() {
        let clock = Budget::unlimited()
            .with_iteration_cap(3)
            .with_memory_ceiling(1000)
            .start();
        assert_eq!(clock.check(2, 1000), None);
        assert!(matches!(
            clock.check(3, 0),
            Some(BudgetTrip::IterationCap { iterations: 3, cap: 3 })
        ));
        // Memory outranks the iteration cap.
        assert!(matches!(
            clock.check(3, 1001),
            Some(BudgetTrip::MemoryCeiling {
                observed_bytes: 1001,
                ceiling_bytes: 1000
            })
        ));
    }

    #[test]
    fn deadline_trips_and_remaining_saturates() {
        let clock = Budget::unlimited().with_deadline(Duration::ZERO).start();
        assert!(matches!(
            clock.check(0, 0),
            Some(BudgetTrip::DeadlineExceeded { .. })
        ));
        assert_eq!(clock.remaining_deadline(), Some(Duration::ZERO));
        let far = Budget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .start();
        assert_eq!(far.check(0, 0), None);
        assert!(far.remaining_deadline().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn wire_codec_round_trips_and_merge_prioritizes() {
        let trips = [
            BudgetTrip::Cancelled,
            BudgetTrip::DeadlineExceeded {
                elapsed: Duration::from_micros(1234),
                deadline: Duration::from_micros(1000),
            },
            BudgetTrip::MemoryCeiling {
                observed_bytes: 7,
                ceiling_bytes: 5,
            },
            BudgetTrip::IterationCap {
                iterations: 4,
                cap: 4,
            },
        ];
        for t in &trips {
            let (k, a, b) = t.to_wire();
            assert_eq!(BudgetTrip::from_wire(k, a, b).as_ref(), Some(t));
        }
        assert_eq!(BudgetTrip::from_wire(200, 0, 0), None);

        // Priority: cancel beats everything; equal kinds take max.
        let cancel = trips[0].to_wire();
        let cap = trips[3].to_wire();
        assert_eq!(BudgetTrip::merge_wire(cap, cancel), cancel);
        assert_eq!(BudgetTrip::merge_wire(cancel, cap), cancel);
        let mem_a = (2u8, 10u64, 5u64);
        let mem_b = (2u8, 7u64, 8u64);
        assert_eq!(BudgetTrip::merge_wire(mem_a, mem_b), (2, 10, 8));
    }

    /// Live threads of this process (Linux: one entry per task).
    /// Returns `None` on platforms without procfs, where the leak
    /// regression degrades to the join-semantics assertions.
    fn live_threads() -> Option<usize> {
        std::fs::read_dir("/proc/self/task")
            .ok()
            .map(|d| d.count())
    }

    #[test]
    fn many_short_guards_leak_no_threads() {
        // Server-shaped lifecycle: a burst of short jobs each arms a
        // deadline guard and completes well before the deadline. Every
        // watcher must be disarmed AND joined at completion — both via
        // the explicit `disarm()` a job engine calls and via drop — so
        // the process thread count returns to its baseline instead of
        // accumulating one parked watcher per served job.
        let baseline = live_threads();
        for batch in 0..8 {
            let mut guards = Vec::new();
            for i in 0..16 {
                let token = CancelToken::new();
                let guard = DeadlineGuard::arm(token.clone(), Duration::from_secs(3600));
                if (batch + i) % 2 == 0 {
                    guard.disarm(); // explicit completion path
                    assert!(!token.is_cancelled());
                } else {
                    guards.push((guard, token)); // drop path, end of batch
                }
            }
            for (_, token) in &guards {
                assert!(!token.is_cancelled());
            }
            drop(guards);
        }
        if let (Some(before), Some(after)) = (baseline, live_threads()) {
            // Unrelated test threads may come and go; what must NOT
            // appear is anything like the 128 watchers armed above.
            assert!(
                after <= before + 4,
                "deadline-guard watchers leaked: {before} threads before, {after} after"
            );
        }
    }

    #[test]
    fn deadline_guard_fires_the_token_and_drop_disarms() {
        let token = CancelToken::new();
        let guard = DeadlineGuard::arm(token.clone(), Duration::from_millis(5));
        let start = Instant::now();
        while !token.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(token.is_cancelled(), "guard never fired");
        drop(guard);

        // A guard dropped before its deadline must not fire.
        let quiet = CancelToken::new();
        let g2 = DeadlineGuard::arm(quiet.clone(), Duration::from_secs(3600));
        drop(g2); // joins the timer thread
        assert!(!quiet.is_cancelled());
    }
}
