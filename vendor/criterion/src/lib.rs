//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates, so the workspace vendors
//! the API surface its benches use: [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark
//! body is warmed up once and then timed over a handful of iterations;
//! the median is printed as `group/bench ... time: <t>`. No statistics,
//! HTML reports, or command-line filtering — just enough to keep
//! `cargo bench` compiling and producing comparable wall-clock numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last: Option<Duration>,
}

impl Bencher {
    /// Time `f`, keeping the median of a few samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also forces lazy setup work out of the timing).
        std::hint::black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion-compatible
    /// knob; small values keep offline runs fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 100);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples.min(5),
            last: None,
        };
        f(&mut b);
        let time = b
            .last
            .map(fmt_duration)
            .unwrap_or_else(|| "<no iter() call>".to_string());
        println!("{}/{:<24} time: {}", self.name, id, time);
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    /// Benchmark a closure against an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (formatting separator only).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for compatibility; there is no CLI offline.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 5,
            _parent: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let name = id.to_string();
        let mut g = self.benchmark_group(&name);
        g.run_one(String::new(), f);
        self
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Bundle benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
