//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no pre-fetched
//! registry, so the workspace vendors the tiny slice of `rand` it
//! actually uses: [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! `f64`/`u64`/`u32`/`bool`, and [`Rng::gen_range`] over integer and
//! float ranges. Everything is deterministic for a fixed seed, which is
//! all the reproduction needs (every call site seeds explicitly).
//!
//! The generators are xoshiro256++ ([`rngs::StdRng`]) and xoshiro128++
//! truncated to a 64-bit path ([`rngs::SmallRng`]), both seeded through
//! SplitMix64 exactly like the upstream `rand` crate seeds its
//! small RNGs. Statistical quality is far beyond what the synthetic
//! matrix generators and Gaussian sketches require.

use std::ops::{Range, RangeInclusive};

/// Seed a generator from a `u64` (the only constructor the workspace
/// uses; full-entropy seeding is intentionally unsupported offline).
pub trait SeedableRng: Sized {
    /// Deterministically build the generator from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform sampling of a whole type (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range sampling (`rng.gen_range(a..b)` / `rng.gen_range(a..=b)`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the bias for
                // span << 2^64 is negligible for test workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty inclusive range in gen_range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (e - s) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                s + hi as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "empty inclusive range in gen_range");
        s + f64::sample(rng) * (e - s)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` uniformly (`f64`/`f32` in `[0,1)`,
    /// integers over their full range, `bool` fair).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++ — the stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// xoshiro256++ with independently mixed seed — the stand-in for
    /// `rand::rngs::SmallRng` (which is also a xoshiro on 64-bit
    /// targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng(StdRng);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Decorrelate from StdRng streams with the same seed.
            SmallRng(StdRng::seed_from_u64(state ^ 0x6A09E667F3BCC909))
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// `rand::prelude`-alike for drop-in `use rand::prelude::*`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(0usize..=4);
            assert!(j <= 4);
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_hits_all_values() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn small_and_std_streams_differ() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
