//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates, so the workspace vendors
//! the subset of proptest it uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, and [`prelude::ProptestConfig`] with
//! `with_cases`.
//!
//! Differences from the real crate, on purpose:
//! - **Deterministic**: cases are generated from a fixed seed mixed
//!   with the test name, so failures are reproducible by rerunning the
//!   same test (no `PROPTEST_` env machinery).
//! - **No shrinking**: a failing case reports its case index and the
//!   seed; rerunning reproduces it exactly, which is enough to debug.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The generation source handed to strategies (wraps the vendored
/// deterministic RNG).
pub struct TestSource {
    rng: StdRng,
}

impl TestSource {
    /// Build a source for `test_name`, case `case` (deterministic).
    pub fn new(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestSource {
            rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x9E3779B97F4A7C15),
        }
    }

    /// Raw bits, for strategy implementations.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    #[inline]
    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of values of one type (subset of `proptest::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, src: &mut TestSource) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chain into a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, src: &mut TestSource) -> O {
        (self.f)(self.inner.generate(src))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, src: &mut TestSource) -> S2::Value {
        (self.f)(self.inner.generate(src)).generate(src)
    }
}

/// A fixed value (`Just`).
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _src: &mut TestSource) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, src: &mut TestSource) -> $t {
                src.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, src: &mut TestSource) -> $t {
                src.rng().gen_range(self.clone())
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, src: &mut TestSource) -> f64 {
        src.rng().gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, src: &mut TestSource) -> f64 {
        src.rng().gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, src: &mut TestSource) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(src),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestSource};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Something that yields a length for a generated collection.
    pub trait SizeRange {
        /// Draw a size.
        fn pick(&self, src: &mut TestSource) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _src: &mut TestSource) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, src: &mut TestSource) -> usize {
            src.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, src: &mut TestSource) -> usize {
            src.rng().gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, src: &mut TestSource) -> Vec<S::Value> {
            let n = self.size.pick(src);
            (0..n).map(|_| self.element.generate(src)).collect()
        }
    }

}

/// Test-runner types (subset: the config and the case error).
pub mod test_runner {
    use std::fmt;

    /// Number of generated cases per property.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// How many cases [`crate::proptest!`] runs per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// `use proptest::prelude::*;` — everything the property tests need.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Declare property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..10, v in collection::vec(0.0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident (
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                for case in 0..cfg.cases {
                    let mut __src =
                        $crate::TestSource::new(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&$strat, &mut __src);
                    )+
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| { $body Ok(()) })();
                    if let Err(e) = __outcome {
                        panic!(
                            "property '{}' failed at deterministic case {}/{}: {}",
                            stringify!($name), case, cfg.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current generated case instead of
/// panicking directly (reported with the case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// `assert_ne!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

impl fmt::Debug for TestSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TestSource")
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = 1usize..=10;
        let mut a = crate::TestSource::new("t", 0);
        let mut b = crate::TestSource::new("t", 0);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 2usize..=9, f in -1.0f64..1.0) {
            prop_assert!((2..=9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_and_vec_compose(
            v in (1usize..=5).prop_flat_map(|n| {
                crate::collection::vec(0.0f64..1.0, n).prop_map(move |d| (n, d))
            })
        ) {
            prop_assert_eq!(v.0, v.1.len());
            for x in &v.1 {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn early_return_ok_works(x in 0usize..4) {
            if x == 0 { return Ok(()); }
            prop_assert!(x > 0);
        }
    }
}
