//! SPMD scenario: running LU_CRTP across message-passing ranks.
//!
//! The paper's implementation is MPI-based; this example drives the
//! same algorithm through the `lra-comm` runtime (ranks = threads,
//! binomial-tree collectives) and shows that every rank arrives at the
//! identical factorization while the tournament's communication pattern
//! (local reduction, then log2(P) pairwise rounds) is exercised for
//! real.
//!
//! ```sh
//! cargo run --release --example distributed_lu
//! ```

use lra::core::{lu_crtp, lu_crtp_spmd, LuCrtpOpts, Parallelism};

fn main() {
    let a = lra::matgen::with_decay(&lra::matgen::fem2d(30, 28, 11), 1e-6, 3);
    let tau = 1e-3;
    let k = 16;
    println!(
        "stiffness operator: {}x{}, nnz = {}",
        a.rows(),
        a.cols(),
        a.nnz()
    );

    // Shared-memory reference.
    let t = std::time::Instant::now();
    let reference = lu_crtp(&a, &LuCrtpOpts::new(k, tau));
    println!(
        "shared-memory LU_CRTP : rank {}, its {}, nnz {}, {:.3}s",
        reference.rank,
        reference.iterations,
        reference.factor_nnz(),
        t.elapsed().as_secs_f64()
    );

    for np in [1usize, 2, 4] {
        let t = std::time::Instant::now();
        let per_rank = lra::comm::run_infallible(np, |ctx| {
            let r = lu_crtp_spmd(ctx, &a, &LuCrtpOpts::new(k, tau));
            (ctx.rank(), r.rank, r.factor_nnz(), r.indicator)
        });
        let elapsed = t.elapsed().as_secs_f64();
        let (_, rank, nnz, ind) = per_rank[0];
        // All ranks must agree bit-for-bit on the factorization.
        assert!(per_rank.iter().all(|&(_, r, n, i)| (r, n, i) == (rank, nnz, ind)));
        println!(
            "SPMD np={np:<2}            : rank {rank}, nnz {nnz}, indicator {ind:.3e}, {elapsed:.3}s (all {np} ranks agree)"
        );
    }

    println!(
        "\nerror bound check: indicator {:.3e} < tau*||A||_F = {:.3e}",
        reference.indicator,
        tau * reference.a_norm_f
    );
    let exact = reference.exact_error(&a, Parallelism::SEQ);
    println!("exact ||A - LU||_F = {exact:.3e} (equals the indicator for LU_CRTP)");
}
