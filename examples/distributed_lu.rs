//! SPMD scenario: running LU_CRTP across message-passing ranks.
//!
//! The paper's implementation is MPI-based; this example drives the
//! same algorithm through the `lra-comm` runtime (ranks = threads,
//! binomial-tree collectives) and shows that every rank arrives at the
//! identical factorization while the tournament's communication pattern
//! (local reduction, then log2(P) pairwise rounds) is exercised for
//! real.
//!
//! ```sh
//! cargo run --release --example distributed_lu
//! ```

use lra::core::{
    lu_crtp, lu_crtp_dist_checked, lu_crtp_supervised, LuCrtpOpts, Parallelism, RecoveryPolicy,
    RunConfig,
};

fn main() {
    let a = lra::matgen::with_decay(&lra::matgen::fem2d(30, 28, 11), 1e-6, 3);
    let tau = 1e-3;
    let k = 16;
    println!(
        "stiffness operator: {}x{}, nnz = {}",
        a.rows(),
        a.cols(),
        a.nnz()
    );

    // Shared-memory reference.
    let t = std::time::Instant::now();
    let reference = lu_crtp(&a, &LuCrtpOpts::new(k, tau));
    println!(
        "shared-memory LU_CRTP : rank {}, its {}, nnz {}, {:.3}s",
        reference.rank,
        reference.iterations,
        reference.factor_nnz(),
        t.elapsed().as_secs_f64()
    );

    let cfg = RunConfig::default();
    for np in [1usize, 2, 4] {
        let t = std::time::Instant::now();
        // The checked entry point rejects bad inputs up front instead
        // of panicking a rank mid-collective.
        let per_rank = lu_crtp_dist_checked(&a, &LuCrtpOpts::new(k, tau), np, &cfg)
            .expect("inputs validated");
        let elapsed = t.elapsed().as_secs_f64();
        let results: Vec<_> = per_rank
            .iter()
            .map(|r| r.as_ref().expect("fault-free run"))
            .map(|r| (r.rank, r.factor_nnz(), r.indicator))
            .collect();
        let (rank, nnz, ind) = results[0];
        // All ranks must agree bit-for-bit on the factorization.
        assert!(results.iter().all(|&t| t == (rank, nnz, ind)));
        println!(
            "SPMD np={np:<2}            : rank {rank}, nnz {nnz}, indicator {ind:.3e}, {elapsed:.3}s (all {np} ranks agree)"
        );
    }

    // Supervised variant: same factorization, but rank failures are
    // retried/absorbed per the recovery policy instead of panicking.
    let t = std::time::Instant::now();
    let supervised = lu_crtp_supervised(
        &a,
        &LuCrtpOpts::new(k, tau),
        4,
        &cfg,
        &RecoveryPolicy::default(),
        1,
    )
    .expect("recovery policy not exhausted");
    println!(
        "supervised np=4       : rank {}, nnz {}, attempts {}, final np {}, {:.3}s",
        supervised.value.rank,
        supervised.value.factor_nnz(),
        supervised.attempts,
        supervised.final_np,
        t.elapsed().as_secs_f64()
    );

    println!(
        "\nerror bound check: indicator {:.3e} < tau*||A||_F = {:.3e}",
        reference.indicator,
        tau * reference.a_norm_f
    );
    let exact = reference.exact_error(&a, Parallelism::SEQ);
    println!("exact ||A - LU||_F = {exact:.3e} (equals the indicator for LU_CRTP)");
}
