//! Accuracy vs. cost, in miniature (the shape of Figs. 2-3).
//!
//! Runs all four methods across a tolerance sweep on an economic-model
//! matrix and prints runtime and rank per achieved accuracy, plus the
//! minimum rank required according to the TSVD reference — the same
//! comparison the paper plots for M3-M5.
//!
//! ```sh
//! cargo run --release --example accuracy_vs_cost
//! ```

use lra::core::{
    ilut_crtp, lu_crtp, rand_qb_ei, rand_ubv, IlutOpts, LuCrtpOpts, Parallelism, QbOpts, UbvOpts,
};
use lra::dense::{min_rank_for_tolerance, singular_values};

fn main() {
    let a = lra::matgen::with_decay(&lra::matgen::economic(900, 12, 5), 1e-6, 8);
    let par = Parallelism::full();
    let k = 16;
    println!(
        "economic model: {}x{}, nnz = {}",
        a.rows(),
        a.cols(),
        a.nnz()
    );

    // TSVD reference (exact minimum rank) — affordable at this size.
    println!("computing TSVD reference...");
    let sv = singular_values(&a.to_dense());

    println!(
        "\n{:>8} | {:>7} | {:>26} | {:>16} | {:>16} | {:>16}",
        "tau", "minrank", "RandQB_EI p=1 (rank, s)", "LU_CRTP", "ILUT_CRTP", "RandUBV"
    );
    for tau in [1e-1, 1e-2, 1e-3] {
        let min_rank = min_rank_for_tolerance(&sv, tau);

        let t = std::time::Instant::now();
        let qb = rand_qb_ei(&a, &QbOpts::new(k, tau).with_power(1).with_par(par)).unwrap();
        let t_qb = t.elapsed().as_secs_f64();

        let t = std::time::Instant::now();
        let lu = lu_crtp(&a, &LuCrtpOpts::new(k, tau).with_par(par));
        let t_lu = t.elapsed().as_secs_f64();

        let t = std::time::Instant::now();
        let il = ilut_crtp(&a, &{
            let mut o = IlutOpts::new(k, tau, lu.iterations.max(1));
            o.base.par = par;
            o
        });
        let t_il = t.elapsed().as_secs_f64();

        let t = std::time::Instant::now();
        let ub = rand_ubv(&a, &{
            let mut o = UbvOpts::new(k, tau);
            o.par = par;
            o
        });
        let t_ub = t.elapsed().as_secs_f64();

        println!(
            "{:>8.0e} | {:>7} | {:>14} {:>9.3}s | {:>6} {:>8.3}s | {:>6} {:>8.3}s | {:>6} {:>8.3}s",
            tau,
            min_rank,
            qb.rank,
            t_qb,
            lu.rank,
            t_lu,
            il.rank,
            t_il,
            ub.rank,
            t_ub
        );
    }
    println!("\n(minrank = exact minimum rank for the tolerance, from the TSVD;");
    println!(" the fixed-precision methods overshoot it by at most one block)");
}
