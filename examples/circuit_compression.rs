//! Domain scenario: compressing a circuit-simulation operator.
//!
//! Circuit matrices (the paper's M3/M4/M6 family) are the motivating
//! workload for sparse low-rank compression: model-order reduction
//! keeps a rank-K surrogate of the conductance matrix. This example
//! sweeps the tolerance and reports the accuracy-vs-cost trade-off of
//! the deterministic methods, including the fill-in that motivates
//! ILUT_CRTP.
//!
//! ```sh
//! cargo run --release --example circuit_compression
//! ```

use lra::core::{ilut_crtp, lu_crtp, IlutOpts, LuCrtpOpts, Parallelism};

fn main() {
    let a = lra::matgen::with_decay(&lra::matgen::circuit(2000, 5, 12, 9), 1e-6, 3);
    let par = Parallelism::full();
    let k = 32;
    println!(
        "circuit operator: {}x{}, nnz = {} ({:.1} per row)",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.nnz_per_row()
    );
    println!(
        "{:>8} {:>10} {:>6} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "tau", "method", "rank", "factor nnz", "max fill", "err", "time [s]", "speedup"
    );
    for tau in [1e-1, 1e-2, 1e-3] {
        let t = std::time::Instant::now();
        let lu = lu_crtp(&a, &LuCrtpOpts::new(k, tau).with_par(par));
        let t_lu = t.elapsed().as_secs_f64();
        let max_fill = lu
            .trace
            .iter()
            .map(|t| t.schur_density)
            .fold(0.0f64, f64::max);
        println!(
            "{:>8.0e} {:>10} {:>6} {:>12} {:>12.4} {:>10.2e} {:>10.3} {:>9}",
            tau, "LU_CRTP", lu.rank, lu.factor_nnz(), max_fill, lu.indicator, t_lu, "1.0"
        );

        let t = std::time::Instant::now();
        let il = ilut_crtp(&a, &{
            let mut o = IlutOpts::new(k, tau, lu.iterations.max(1));
            o.base.par = par;
            o
        });
        let t_il = t.elapsed().as_secs_f64();
        let max_fill_il = il
            .trace
            .iter()
            .map(|t| t.schur_density)
            .fold(0.0f64, f64::max);
        println!(
            "{:>8.0e} {:>10} {:>6} {:>12} {:>12.4} {:>10.2e} {:>10.3} {:>9.1}",
            tau,
            "ILUT_CRTP",
            il.rank,
            il.factor_nnz(),
            max_fill_il,
            il.indicator,
            t_il,
            t_lu / t_il
        );
    }
    println!("\n(max fill = peak density of the Schur complement A^(i); the gap");
    println!(" between the two rows is the fill-in ILUT_CRTP's thresholding removes)");
}
