//! Domain scenario: dominant deformation modes of a structural model.
//!
//! For a stiffness matrix (the paper's M1 family), the leading left
//! singular subspace spans the dominant response modes. RandQB_EI's
//! fixed-precision interface answers "how many modes capture 99.9 % of
//! the operator's energy?" without choosing the rank up front; the
//! orthonormal `Q_K` is then used to project load vectors into the
//! reduced space.
//!
//! ```sh
//! cargo run --release --example fem_modes
//! ```

use lra::core::{rand_qb_ei, Parallelism, QbOpts};
use lra::dense::{matmul, matmul_tn, DenseMatrix};
use lra::sparse::spmv;

fn main() {
    let nx = 40;
    let ny = 30;
    let a = lra::matgen::with_decay(&lra::matgen::fem2d(nx, ny, 4), 1e-7, 2);
    let n = a.cols();
    let par = Parallelism::full();
    println!(
        "stiffness matrix: {}x{} grid -> {} DoF, nnz = {}",
        nx,
        ny,
        n,
        a.nnz()
    );

    // "99.9% of the energy" == tau = sqrt(1 - 0.999^2) ~ 4.5e-2 in the
    // Frobenius sense; we go tighter.
    let tau = 1e-3;
    let r = rand_qb_ei(&a, &QbOpts::new(32, tau).with_power(1).with_par(par)).unwrap();
    println!(
        "captured {:.5}% of ||A||_F^2 with K = {} modes ({} iterations)",
        100.0 * (1.0 - (r.indicator / r.a_norm_f).powi(2)),
        r.rank,
        r.iterations
    );
    println!(
        "basis orthogonality error max|Q^T Q - I| = {:.2e}",
        r.orthogonality_error()
    );

    // Project a point load onto the reduced basis and measure how much
    // of the response lives in the captured subspace.
    let mut load = vec![0.0; n];
    load[n / 2] = 1.0;
    let response = spmv(&a, &load); // full response A e_mid
    let resp_mat = DenseMatrix::from_fn(n, 1, |i, _| response[i]);
    let coeffs = matmul_tn(&r.q, &resp_mat, par); // K x 1
    let recon = matmul(&r.q, &coeffs, par);
    let mut err_sq = 0.0;
    let mut norm_sq = 0.0;
    for (i, &resp) in response.iter().enumerate() {
        let d = recon.get(i, 0) - resp;
        err_sq += d * d;
        norm_sq += resp * resp;
    }
    println!(
        "point-load response captured by the reduced basis: {:.4}% (residual {:.2e})",
        100.0 * (1.0 - (err_sq / norm_sq).sqrt()),
        (err_sq / norm_sq).sqrt()
    );

    // Rank needed at a few coarser tolerances (the fixed-precision
    // interface answers this directly from the indicator history).
    println!("\n tolerance -> minimum captured rank (from one tight run):");
    for target in [1e-1, 1e-2, 1e-3] {
        let needed = r
            .indicator_history
            .iter()
            .position(|&e| e < target * r.a_norm_f)
            .map(|i| (i + 1) * 32);
        match needed {
            Some(kk) => println!("   tau = {target:>7.0e}: K <= {kk}"),
            None => println!("   tau = {target:>7.0e}: not reached (K > {})", r.rank),
        }
    }
}
