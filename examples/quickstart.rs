//! Quickstart: run all four fixed-precision methods on one sparse
//! matrix and compare rank, iterations, factor size and true error.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lra::core::{
    ilut_crtp, lu_crtp, rand_qb_ei, rand_ubv, IlutOpts, LuCrtpOpts, Parallelism, QbOpts, UbvOpts,
};

fn main() {
    // A circuit-simulation-style sparse matrix (1000 x 1000) with a
    // decaying singular spectrum.
    let a = lra::matgen::with_decay(&lra::matgen::circuit(1000, 4, 8, 42), 1e-6, 7);
    let tau = 1e-2;
    let k = 16;
    let par = Parallelism::full();
    println!(
        "matrix: {}x{}, nnz = {}, ||A||_F = {:.3e}, tau = {tau:.0e}, k = {k}",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.fro_norm()
    );
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>12} {:>10}",
        "method", "rank", "its", "factor nnz", "exact err", "time [s]"
    );

    let t = std::time::Instant::now();
    let qb = rand_qb_ei(&a, &QbOpts::new(k, tau).with_par(par)).expect("tau above floor");
    let dt = t.elapsed().as_secs_f64();
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>12.3e} {:>10.3}",
        "RandQB_EI",
        qb.rank,
        qb.iterations,
        qb.q.rows() * qb.q.cols() + qb.b.rows() * qb.b.cols(),
        qb.exact_error(&a, par),
        dt
    );

    let t = std::time::Instant::now();
    let lu = lu_crtp(&a, &LuCrtpOpts::new(k, tau).with_par(par));
    let dt = t.elapsed().as_secs_f64();
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>12.3e} {:>10.3}",
        "LU_CRTP",
        lu.rank,
        lu.iterations,
        lu.factor_nnz(),
        lu.exact_error(&a, par),
        dt
    );

    let t = std::time::Instant::now();
    let il = ilut_crtp(&a, &{
        let mut o = IlutOpts::new(k, tau, lu.iterations.max(1));
        o.base.par = par;
        o
    });
    let dt = t.elapsed().as_secs_f64();
    let rep = il.threshold.as_ref().unwrap();
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>12.3e} {:>10.3}   (mu = {:.2e}, dropped {})",
        "ILUT_CRTP",
        il.rank,
        il.iterations,
        il.factor_nnz(),
        il.exact_error(&a, par),
        dt,
        rep.mu,
        rep.dropped
    );

    let t = std::time::Instant::now();
    let ub = rand_ubv(&a, &{
        let mut o = UbvOpts::new(k, tau);
        o.par = par;
        o
    });
    let dt = t.elapsed().as_secs_f64();
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>12.3e} {:>10.3}",
        "RandUBV",
        ub.rank,
        ub.iterations,
        ub.u.rows() * ub.u.cols() + ub.v.rows() * ub.v.cols(),
        ub.exact_error(&a, par),
        dt
    );
    println!(
        "\nnnz(LU_CRTP factors) / nnz(ILUT_CRTP factors) = {:.2}",
        lu.factor_nnz() as f64 / il.factor_nnz() as f64
    );
}
