//! # lra — parallel fixed-precision low-rank approximation of sparse matrices
//!
//! A Rust implementation of the algorithms studied in *"Accuracy vs.
//! Cost in Parallel Fixed-Precision Low-Rank Approximations of Sparse
//! Matrices"* (Ernstbrunner, Mayer, Gansterer — IEEE IPDPS 2022),
//! including every substrate they depend on: dense/sparse linear
//! algebra, tournament pivoting, fill-reducing orderings, an SPMD
//! message-passing runtime, and synthetic workload generators.
//!
//! ## The problem
//!
//! Given a large sparse `A` and a tolerance `tau`, find a rank `K` and
//! factors `H_K (m x K)`, `W_K (K x n)` with
//! `||A - H_K W_K||_F < tau * ||A||_F` — *without* knowing `K` in
//! advance (the fixed-precision problem, eq. 1 of the paper).
//!
//! ## The methods
//!
//! | Method | Kind | Factors | Error control |
//! |---|---|---|---|
//! | [`core::rand_qb_ei`] | randomized | dense `Q B` | indicator eq. 4 (floor `2.1e-7`) |
//! | [`core::lu_crtp`] | deterministic | sparse `L U` | indicator `\|\|A^(i+1)\|\|_F` |
//! | [`core::ilut_crtp`] | deterministic + thresholding | sparser `L U` | estimator eq. 26 |
//! | [`core::rand_ubv`] | randomized | dense `U B V^T` | Frobenius update |
//!
//! ## Quickstart
//!
//! ```
//! use lra::core::{lu_crtp, rand_qb_ei, LuCrtpOpts, QbOpts, Parallelism};
//!
//! // A sparse test matrix with decaying spectrum.
//! let a = lra::matgen::with_decay(&lra::matgen::circuit(200, 4, 3, 1), 1e-6, 2);
//! let tau = 1e-2;
//!
//! // Randomized: dense factors.
//! let qb = rand_qb_ei(&a, &QbOpts::new(16, tau).with_par(Parallelism::full())).unwrap();
//! assert!(qb.converged);
//! assert!(qb.exact_error(&a, Parallelism::SEQ) < tau * qb.a_norm_f);
//!
//! // Deterministic: sparse factors.
//! let lu = lu_crtp(&a, &LuCrtpOpts::new(16, tau));
//! assert!(lu.converged);
//! assert!(lu.indicator < tau * lu.a_norm_f);
//! ```
//!
//! See `examples/` for domain scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

pub use lra_core as core;
pub use lra_dense as dense;
pub use lra_sparse as sparse;
pub use lra_ordering as ordering;
pub use lra_comm as comm;
pub use lra_qrtp as qrtp;
pub use lra_recover as recover;
pub use lra_serve as serve;
pub use lra_matgen as matgen;
pub use lra_obs as obs;
pub use lra_par as par;
